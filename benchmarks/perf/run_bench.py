#!/usr/bin/env python
"""Time serial-vs-engine scenario pairs and emit ``BENCH_engine.json``.

This is the repo's perf trajectory: each entry records, for one
scenario, the serial wall time, the engine wall time, the speedup, and
which engine mechanism produced it (vectorization, cell deduplication,
or process-pool workers).  Every engine run is checked against its
serial twin before the timing is trusted — a speedup over wrong results
is not a speedup.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_bench.py            # full
    PYTHONPATH=src python benchmarks/perf/run_bench.py --quick    # CI
    PYTHONPATH=src python benchmarks/perf/run_bench.py -o out.json

The full run includes the 1000-server sweep (tens of seconds of serial
baseline); ``--quick`` stops at 100 servers.  See ``docs/ENGINE.md``
for how to read and when to refresh the committed file.
"""

from __future__ import annotations

import argparse
import datetime
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import numpy as np

import perf_scenarios as sc
from repro.core.placement import _build_performance_matrix_reference
from repro.engine.vectorized import (
    build_performance_matrix_vectorized,
    clear_engine_caches,
)
from repro.evaluation.colocation_eval import evaluate_policy
from repro.runtime.atomic import atomic_write_json
from repro.workloads.traces import UNIFORM_EVAL_LEVELS


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def _flat(result):
    return [
        (
            o.lc_name,
            o.be_name,
            o.level,
            o.result.avg_be_throughput_norm,
            o.result.avg_power_w,
            o.result.energy_kwh,
        )
        for o in result.outcomes
    ]


def bench_matrix(cat, replicas: int) -> dict:
    servers, be_models = sc.matrix_inputs(cat, replicas=replicas)
    n = 4 * replicas
    reference, serial_s = _timed(
        _build_performance_matrix_reference, servers, be_models, cat.spec
    )
    clear_engine_caches()
    cold, cold_s = _timed(
        build_performance_matrix_vectorized,
        servers, be_models, cat.spec, levels=UNIFORM_EVAL_LEVELS,
    )
    warm, warm_s = _timed(
        build_performance_matrix_vectorized,
        servers, be_models, cat.spec, levels=UNIFORM_EVAL_LEVELS,
    )
    assert np.array_equal(reference.values, cold.values), "vectorized != reference"
    assert np.array_equal(reference.values, warm.values), "warm != reference"
    return {
        "name": f"matrix_population_{n}x{n}",
        "description": (
            f"Placement performance matrix, {n} BE x {n} LC x "
            f"{len(UNIFORM_EVAL_LEVELS)} levels: loop reference vs "
            "numpy-vectorized engine (cold = grids + memoized spares "
            "built fresh; warm = caches populated)"
        ),
        "mechanism": "vectorization",
        "serial_s": round(serial_s, 4),
        "engine_s": round(cold_s, 4),
        "engine_warm_s": round(warm_s, 4),
        "speedup": round(serial_s / cold_s, 2),
        "speedup_warm": round(serial_s / warm_s, 2),
        "identical_results": True,
    }


def bench_cluster(cat, n_servers: int, serial_baseline: bool = True) -> dict:
    plans = sc.fleet_plans(cat, n_servers)
    n_cells = n_servers * len(sc.SWEEP_LEVELS)
    engine, engine_s = _timed(sc.run_fleet, cat, plans, dedupe=True)
    entry = {
        "name": f"cluster_sweep_{n_servers}",
        "description": (
            f"run_cluster: {n_servers} servers (4 replicated plan "
            f"templates) x {len(sc.SWEEP_LEVELS)} load levels = "
            f"{n_cells} cells, {sc.SWEEP_DURATION_S:.0f}s cells; serial "
            "loop vs engine cell deduplication"
        ),
        "mechanism": "cell-dedupe",
        "engine_s": round(engine_s, 4),
        "cells": n_cells,
        "identical_results": None,
    }
    if serial_baseline:
        serial, serial_s = _timed(sc.run_fleet, cat, plans)
        entry["serial_s"] = round(serial_s, 4)
        entry["speedup"] = round(serial_s / engine_s, 2)
        entry["identical_results"] = _flat(serial) == _flat(engine)
        assert entry["identical_results"], "dedupe != serial"
    return entry


def bench_batched(cat, n_servers: int, reps: int = 3) -> dict:
    """Serial object loop vs the batched SoA core, dedupe off on both arms.

    This is the honest per-cell comparison: every one of the
    ``n_servers * levels`` cells is simulated by both engines (no cell
    deduplication assisting either side), and the batched results must
    be identical before the timing is trusted.  The batched arm keeps
    its value-keyed surface tables warm (built once per catalog), which
    is its steady-state operating point; the min over ``reps`` runs
    screens out scheduler noise.
    """
    plans = sc.fleet_plans(cat, n_servers)
    n_cells = n_servers * len(sc.SWEEP_LEVELS)
    serial, serial_s = _timed(sc.run_fleet, cat, plans)
    sc.run_fleet(cat, sc.fleet_plans(cat, 10), engine="batched")
    batched = None
    batched_s = float("inf")
    for _ in range(reps):
        batched, t = _timed(sc.run_fleet, cat, plans, engine="batched")
        batched_s = min(batched_s, t)
    assert _flat(serial) == _flat(batched), "batched != serial"
    return {
        "name": f"batched_sweep_{n_servers}",
        "description": (
            f"run_cluster: {n_servers} servers x {len(sc.SWEEP_LEVELS)} "
            f"load levels = {n_cells} cells, {sc.SWEEP_DURATION_S:.0f}s "
            "cells; serial per-object loop vs the batched "
            "structure-of-arrays core (engine='batched'), dedupe "
            f"disabled on both arms; batched min over {reps} reps"
        ),
        "mechanism": "batched-soa",
        "serial_s": round(serial_s, 4),
        "engine_s": round(batched_s, 4),
        "speedup": round(serial_s / batched_s, 2),
        "cells": n_cells,
        "identical_results": True,
    }


def bench_guard_overhead(cat, n_servers: int = 10, reps: int = 9) -> dict:
    """Guarded vs unguarded cluster sweep; the invariant-monitor tax.

    Arms are interleaved and the per-arm minimum is kept, so scheduler
    noise cannot masquerade as guard overhead.  The guarded run must
    stay clean and produce identical floats — guards observe, never
    steer.
    """
    from repro.guard import GuardConfig

    plans = sc.fleet_plans(cat, n_servers)
    guard = GuardConfig()
    sc.run_fleet(cat, plans, dedupe=True)  # warm model/grid caches
    plain_s = guarded_s = float("inf")
    plain = guarded = None
    for _ in range(reps):
        plain, t = _timed(sc.run_fleet, cat, plans, dedupe=True)
        plain_s = min(plain_s, t)
        guarded, t = _timed(sc.run_fleet, cat, plans, dedupe=True, guard=guard)
        guarded_s = min(guarded_s, t)
    assert _flat(plain) == _flat(guarded), "guarded != unguarded results"
    assert all(
        o.result.guard_report.clean for o in guarded.outcomes
    ), "healthy sweep must be violation-free"
    overhead_pct = round(100.0 * (guarded_s / plain_s - 1.0), 1)
    return {
        "name": f"guard_overhead_{n_servers}",
        "description": (
            f"run_cluster: {n_servers} servers x {len(sc.SWEEP_LEVELS)} "
            "levels, unguarded vs guarded (record mode, all six "
            "invariants, deep_check_every="
            f"{guard.deep_check_every}); min over {reps} interleaved reps"
        ),
        "mechanism": "guard-monitor",
        "serial_s": round(plain_s, 4),
        "engine_s": round(guarded_s, 4),
        "overhead_pct": overhead_pct,
        "identical_results": True,
    }


def bench_budget_overhead(cat, reps: int = 9) -> dict:
    """Budgeted vs unbudgeted cluster sweep; the budget-arbiter tax.

    The arbiter plans entirely ahead of execution, so its runtime cost
    is the plan-time tree walk plus a cap-schedule lookup per capper
    subtick.  Budgets need unique leaf names, so the fleet is the four
    distinct paper plans (no replicas).  Arms are interleaved and the
    per-arm minimum is kept; a dense arbiter period (0.5 s against 3 s
    cells) makes this a worst-case schedule, not a best case.
    """
    from repro.budget import BudgetConfig

    plans = sc.fleet_plans(cat, 4)
    budget = BudgetConfig(arbiter_period_s=0.5, lease_s=1.0, rack_size=2)
    sc.run_fleet(cat, plans)  # warm model/grid caches
    plain_s = budgeted_s = float("inf")
    budgeted = budgeted_again = None
    for _ in range(reps):
        _plain, t = _timed(sc.run_fleet, cat, plans)
        plain_s = min(plain_s, t)
        budgeted, t = _timed(sc.run_fleet, cat, plans, budget=budget)
        budgeted_s = min(budgeted_s, t)
        budgeted_again = budgeted_again or budgeted
    assert _flat(budgeted) == _flat(budgeted_again), "budgeted run drifted"
    overhead_pct = round(100.0 * (budgeted_s / plain_s - 1.0), 1)
    return {
        "name": "budget_overhead_4",
        "description": (
            f"run_cluster: 4 distinct servers x {len(sc.SWEEP_LEVELS)} "
            "levels, unbudgeted vs budget tree (racks of 2, 0.5s "
            "arbiter period, 1s leases); min over "
            f"{reps} interleaved reps"
        ),
        "mechanism": "budget-arbiter",
        "serial_s": round(plain_s, 4),
        "engine_s": round(budgeted_s, 4),
        "overhead_pct": overhead_pct,
        "identical_results": True,
    }


def bench_pipeline(cat, workers: int) -> dict:
    kwargs = dict(
        placement_seeds=range(4),
        levels=sc.SWEEP_LEVELS,
        duration_s=sc.SWEEP_DURATION_S,
    )
    serial, serial_s = _timed(evaluate_policy, cat, "pom", **kwargs)
    pooled, pooled_s = _timed(
        evaluate_policy, cat, "pom", workers=workers, **kwargs
    )
    identical = [_flat(r) for r in serial.runs] == [_flat(r) for r in pooled.runs]
    assert identical, "pooled != serial"
    return {
        "name": "pipeline_policy_sweep",
        "description": (
            "evaluate_policy('pom'): 4 seeded cluster runs; serial vs "
            f"process pool ({workers} workers) — gains scale with "
            "physical cores, so expect ~1x on a single-core host"
        ),
        "mechanism": f"process-pool({workers})",
        "serial_s": round(serial_s, 4),
        "engine_s": round(pooled_s, 4),
        "speedup": round(serial_s / pooled_s, 2),
        "identical_results": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="skip the 1000-server sweep")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default: <repo>/BENCH_engine.json)")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    out_path = pathlib.Path(args.output) if args.output else repo_root / "BENCH_engine.json"

    cat = sc.catalog()
    scenarios = [bench_matrix(cat, replicas=4)]
    for n_servers in (10, 100):
        scenarios.append(bench_cluster(cat, n_servers))
    if not args.quick:
        scenarios.append(bench_cluster(cat, 1000))
    scenarios.append(bench_batched(cat, 100))
    if not args.quick:
        scenarios.append(bench_batched(cat, 1000))
    scenarios.append(bench_pipeline(cat, workers=2))
    scenarios.append(bench_guard_overhead(cat))
    scenarios.append(bench_budget_overhead(cat))

    payload = {
        "schema": "pocolo-bench-engine/1",
        "generated": datetime.date.today().isoformat(),
        "generated_by": "benchmarks/perf/run_bench.py"
                        + (" --quick" if args.quick else ""),
        "context": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "scenarios": scenarios,
    }
    atomic_write_json(out_path, payload)
    for s in scenarios:
        speedup = s.get("speedup")
        print(f"{s['name']:28s} engine {s['engine_s']:8.3f}s"
              + (f"  serial {s['serial_s']:8.3f}s  speedup {speedup:5.2f}x"
                 if speedup is not None else ""))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
