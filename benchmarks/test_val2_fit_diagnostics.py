"""Validation V2 — fit diagnostics separate good fits from §V-G violators.

Section V-G scopes the method to workloads with convex, substitutable
resource preferences.  This benchmark runs the diagnostic battery
(:mod:`repro.core.validation`) over the whole paper catalog plus a
synthetic Leontief (perfect-complements) application.

Shape to confirm: all eight catalog apps pass every check with a small
residual-imbalance trend; the Leontief app is flagged on both the
substitution detector and the preference-rankability CI.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.profiler import (
    default_profiling_grid,
    profile_best_effort,
    profile_latency_critical,
)
from repro.core.validation import diagnose_fit, leontief_samples


def run_battery(catalog):
    grid = default_profiling_grid(catalog.spec)
    rng = np.random.default_rng(42)
    rows = []
    for name, app in catalog.lc_apps.items():
        samples = profile_latency_critical(app, grid, load_fraction=0.3, rng=rng)
        rows.append((name, "lc", diagnose_fit(samples)))
    for name, app in catalog.be_apps.items():
        samples = profile_best_effort(app, grid, rng)
        rows.append((name, "be", diagnose_fit(samples)))
    rows.append(("leontief*", "stress", diagnose_fit(leontief_samples())))
    return rows


def test_val2_fit_diagnostics(benchmark, emit, catalog):
    rows_data = benchmark.pedantic(run_battery, args=(catalog,),
                                   rounds=1, iterations=1)

    rows = [
        [name, kind, d.r2_perf, d.returns_to_scale, d.residual_trend,
         f"[{d.pref_cores_ci[0]:.2f}, {d.pref_cores_ci[1]:.2f}]",
         ("OK" if d.trustworthy else f"{len(d.warnings)} warnings")
         + ("" if d.preference_rankable else " (near-tie)")]
        for name, kind, d in rows_data
    ]
    emit("val2_fit_diagnostics", format_table(
        ["app", "kind", "R2 perf", "ret. to scale", "imbalance trend",
         "pref CI (cores)", "verdict"],
        rows, precision=2,
        title="V2 — fit diagnostics (leontief* = synthetic §V-G violator)",
    ))

    for name, kind, diag in rows_data:
        if kind == "stress":
            assert not diag.trustworthy
            assert diag.residual_trend > 0.5
        else:
            assert diag.trustworthy, (name, diag.warnings)
            assert diag.residual_trend < 0.35
