"""Fig 4 — LSTM vs RNN across the whole xapian load spectrum.

Paper artifact: both apps look fine at the 10 %-load snapshot, but "RNN
is able to derive better performance at all loads when compared to LSTM"
once the entire 10-90 % range is considered.

Shape to reproduce: RNN ≥ LSTM at every load level; both decay with load.
"""

from repro.analysis import format_series
from repro.evaluation.motivation import fig4_load_spectrum


def test_fig04_load_spectrum(benchmark, emit):
    curves = benchmark.pedantic(fig4_load_spectrum, rounds=1, iterations=1)

    levels = [level for level, _ in curves["lstm"]]
    emit("fig04_load_spectrum", format_series(
        "xapian load", ["lstm", "rnn"],
        levels,
        [[t for _, t in curves["lstm"]], [t for _, t in curves["rnn"]]],
        title="Fig 4 — capped BE throughput (normalized) vs xapian load "
              "(paper: RNN wins at all loads)",
    ))

    for (_, lstm_t), (_, rnn_t) in zip(curves["lstm"], curves["rnn"]):
        assert rnn_t >= lstm_t - 1e-9
    lstm_series = [t for _, t in curves["lstm"]]
    assert lstm_series == sorted(lstm_series, reverse=True)
