"""Table I — the server configuration.

Paper artifact: the Xeon E5-2650 testbed description: 12 cores,
1.2-2.2 GHz, 30 MB / 20-way LLC, 256 GB DDR4, 480 GB SSD, 50 W idle /
135 W active.

This benchmark regenerates the table from the reference spec constants
and checks every row.
"""

from repro.analysis import format_table
from repro.apps.catalog import REFERENCE_SPEC


def test_tab1_server_config(benchmark, emit):
    spec = benchmark(lambda: REFERENCE_SPEC)

    rows = [
        ["Processor", spec.name],
        ["Cores", f"{spec.cores} cores"],
        ["Frequency", f"{spec.min_freq_ghz} GHz to {spec.max_freq_ghz} GHz"],
        ["LLC capacity", f"{spec.llc_mb:.0f}M, {spec.llc_ways} ways"],
        ["Memory", f"{spec.memory_gb}GB DDR4"],
        ["Storage", f"{spec.storage_gb}GB SSD"],
        ["Power", f"Idle:{spec.idle_power_w:.0f} W, "
                  f"Active:{spec.nameplate_power_w:.0f} W"],
    ]
    emit("tab1_server_config", format_table(
        ["Property", "Configuration"], rows,
        title="Table I — server configuration",
    ))

    assert spec.cores == 12
    assert spec.llc_ways == 20
    assert spec.llc_mb == 30.0
    assert spec.min_freq_ghz == 1.2 and spec.max_freq_ghz == 2.2
    assert spec.idle_power_w == 50.0
    assert spec.nameplate_power_w == 135.0
    assert spec.memory_gb == 256 and spec.storage_gb == 480
