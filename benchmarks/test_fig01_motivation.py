"""Fig 1 — diurnal load and the colocation power overshoot (Section I).

Paper artifact: a 24 h diurnal day on a xapian cluster where naively
admitting a background application during off-peak keeps the *server
resource* utilization within the peak envelope (Fig 1a) while the *power*
draw overshoots the provisioned capacity (Fig 1b).

Shape to reproduce: a block of off-peak hours above the capacity line,
peak hours at/below it, and core utilization never above 1.0.
"""

from repro.analysis import format_table
from repro.evaluation.motivation import fig1_diurnal_overshoot


def test_fig01_motivation(benchmark, emit):
    points, capacity = benchmark.pedantic(
        fig1_diurnal_overshoot, rounds=1, iterations=1
    )

    rows = [
        [int(p.hour), p.load_fraction, p.core_utilization,
         p.power_lc_only_w, p.power_colocated_w,
         "OVER" if p.power_colocated_w > capacity + 1e-9 else ""]
        for p in points
    ]
    emit("fig01_motivation", format_table(
        ["hour", "load", "core util", "W lc-only", "W colocated", "vs cap"],
        rows, precision=2,
        title=f"Fig 1 — diurnal xapian + graph, capacity {capacity:.1f} W",
    ))

    over = [p for p in points if p.power_colocated_w > capacity + 1e-9]
    assert len(over) >= 6, "off-peak colocation must overshoot the capacity"
    for p in points:
        assert p.core_utilization <= 1.0 + 1e-9
        if p.load_fraction > 0.75:
            assert p.power_colocated_w <= capacity + 1e-9
