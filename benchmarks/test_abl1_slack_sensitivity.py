"""Ablation A1 — POM's latency-slack target sensitivity (our addition).

The paper fixes the slack target at 10 % without quantifying the choice.
This ablation sweeps it on the xapian+RNN colocation.

Expected shape in this substrate: a flat, SLO-safe plateau through the
0-30 % range (the adaptive load headroom, not the slack target, provides
the margin), then a cliff once the target exceeds the achievable steady
slack — the headroom ratchets to its ceiling, the primary hoards
resources, and BE throughput collapses.  The paper's 10 % sits safely on
the plateau.
"""

from repro.analysis import format_table
from repro.evaluation.ablations import ablate_slack_target


def test_abl1_slack_sensitivity(benchmark, emit, catalog):
    rows_data = benchmark.pedantic(
        ablate_slack_target, args=(catalog,),
        kwargs={"duration_s": 20.0},
        rounds=1, iterations=1,
    )

    rows = [
        [r.slack_target, r.be_throughput, r.power_utilization,
         r.violation_fraction]
        for r in rows_data
    ]
    emit("abl1_slack_sensitivity", format_table(
        ["slack target", "BE throughput", "power util", "SLO violations"],
        rows,
        title="Ablation A1 — POM slack-target sweep (xapian + rnn)",
    ))

    by_target = {r.slack_target: r for r in rows_data}
    plateau = [r for t, r in by_target.items() if t <= 0.30]
    cliff = by_target[0.50]
    # Plateau: SLO safe, throughput within a narrow band.
    for r in plateau:
        assert r.violation_fraction < 0.05
    tputs = [r.be_throughput for r in plateau]
    assert max(tputs) - min(tputs) < 0.05
    # Cliff: the primary hoards, the BE app starves.
    assert cliff.be_throughput < min(tputs) - 0.03
