"""Fig 12 — BE throughput under Random / POM / POColo per LC server.

Paper artifact: average normalized throughput of the best-effort
co-runner on each latency-critical server, averaged over a uniform
10-90 % load sweep, for the three policies.  Headline: "POM ...
automatically increases average throughput by 8%.  Further ... Pocolo
achieves an 18% improvement."

Shape to reproduce: POColo > POM ≥ Random on the cluster average, with
the SLO held by all three.  (Our simulated substrate lands at roughly
half the paper's relative gains — see EXPERIMENTS.md.)
"""

from repro.analysis import format_table, percent_change, relative_gain_ci


def test_fig12_throughput(benchmark, emit, catalog, policy_evals):
    # The heavy simulation ran in the shared fixture; benchmark the
    # aggregation path so the harness still reports a timing.
    def aggregate():
        return {
            policy: ev.be_throughput_by_server
            for policy, ev in policy_evals.items()
        }

    per_server = benchmark(aggregate)

    servers = list(catalog.lc_apps)
    rows = []
    for policy, by_server in per_server.items():
        rows.append([policy] + [by_server[s] for s in servers]
                    + [policy_evals[policy].cluster_be_throughput])
    emit("fig12_throughput", format_table(
        ["policy"] + servers + ["cluster avg"],
        rows,
        title="Fig 12 — BE throughput (normalized) by LC server "
              "(paper: POM +8%, POColo +18% vs Random)",
    ))

    random_tput = policy_evals["random"].cluster_be_throughput
    pom_tput = policy_evals["pom"].cluster_be_throughput
    pocolo_tput = policy_evals["pocolo"].cluster_be_throughput
    assert pocolo_tput > random_tput * 1.03
    assert pocolo_tput >= pom_tput - 0.005
    assert pom_tput >= random_tput - 0.005
    for ev in policy_evals.values():
        assert ev.violation_fraction < 0.05
    # Uncertainty: bootstrap the POM-vs-Random gain over the per-seed runs.
    random_runs = [r.cluster_be_throughput() for r in policy_evals["random"].runs]
    pom_runs = [r.cluster_be_throughput() for r in policy_evals["pom"].runs]
    gain_ci = relative_gain_ci(pom_runs, random_runs)
    emit("fig12_headline", format_table(
        ["policy", "cluster tput", "vs random"],
        [
            ["random", random_tput, "--"],
            ["pom", pom_tput,
             f"{percent_change(pom_tput, random_tput):+.1%} "
             f"[{gain_ci.ci_low:+.1%}, {gain_ci.ci_high:+.1%}]"],
            ["pocolo", pocolo_tput,
             f"{percent_change(pocolo_tput, random_tput):+.1%}"],
        ],
        title="Fig 12 headline (paper: +8% POM, +18% POColo; "
              "bracket = 95% bootstrap CI over placement seeds)",
    ))
