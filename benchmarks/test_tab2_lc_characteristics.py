"""Table II — latency-critical application server-level characteristics.

Paper artifact: per-LC-app domain, p95/p99 latency SLO, peak server load
and peak server power (img-dnn 3500 rps / 133 W, sphinx 10 rps / 182 W,
xapian 4000 rps / 154 W, TPC-C 8000 rps / 133 W).

This benchmark regenerates the table from the calibrated catalog —
measuring peak power by actually assembling the server at full
allocation — and checks every paper number.
"""

import pytest

from repro.analysis import format_table
from repro.apps.catalog import latency_critical_apps

PAPER = {
    "img-dnn": ("Image search", 0.010, 0.020, 3500.0, 133.0),
    "sphinx": ("Speech recognition", 1.8, 3.03, 10.0, 182.0),
    "xapian": ("Web search", 0.002588, 0.004020, 4000.0, 154.0),
    "tpcc": ("Persistent database", 0.051, 0.707, 8000.0, 133.0),
}


def test_tab2_lc_characteristics(benchmark, emit):
    def build():
        apps = latency_critical_apps()
        return {
            name: (
                app.profile.domain,
                app.latency.slo.p95_s,
                app.latency.slo.p99_s,
                app.peak_load,
                app.peak_server_power_w(),
            )
            for name, app in apps.items()
        }

    measured = benchmark(build)

    rows = [
        [name, domain, p95, p99, peak_load, peak_power]
        for name, (domain, p95, p99, peak_load, peak_power) in measured.items()
    ]
    emit("tab2_lc_characteristics", format_table(
        ["app", "domain", "p95 SLO (s)", "p99 SLO (s)",
         "peak load (req/s)", "peak power (W)"],
        rows, precision=4,
        title="Table II — LC application characteristics",
    ))

    for name, (_, p95, p99, peak_load, peak_power) in measured.items():
        _, paper_p95, paper_p99, paper_load, paper_power = PAPER[name]
        assert p95 == pytest.approx(paper_p95)
        assert p99 == pytest.approx(paper_p99)
        assert peak_load == paper_load
        assert peak_power == pytest.approx(paper_power, abs=0.5)
