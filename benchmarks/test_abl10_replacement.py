"""Ablation A10 — static vs dynamic re-placement (our addition).

The paper places best-effort apps once, arguing "dynamically moving
applications across servers incurs high overheads" (Section I).  This
benchmark prices that argument on a day where the four LC clusters'
diurnal loads are phase-shifted: per-phase re-placement vs the paper's
single average-matrix placement, across a sweep of migration penalties.

Expected shape: re-placement's benefit at zero cost is small (a few
percent — the average matrix already captures most of the structure),
and a modest migration penalty flips the comparison to static — the
crossover quantifies why the paper's static design is right.
"""

from repro.analysis import format_table
from repro.evaluation.replacement import compare_replacement


def test_abl10_replacement(benchmark, emit, catalog):
    result = benchmark.pedantic(
        compare_replacement, args=(catalog,), rounds=1, iterations=1
    )

    rows = [["static (paper)", result.static_total, "--"]]
    for penalty, total in sorted(result.dynamic_total_by_penalty.items()):
        rows.append([
            f"dynamic, penalty {penalty:.0%}", total,
            f"{total / result.static_total - 1:+.1%}",
        ])
    emit("abl10_replacement", format_table(
        ["strategy", "predicted day total", "vs static"],
        rows,
        title=f"Ablation A10 — re-placement under phase-shifted diurnal load "
              f"({result.moves_per_phase:.1f} moves/phase; crossover at "
              f"{result.crossover_penalty():.0%} migration cost)",
    ))

    free = result.dynamic_total_by_penalty[0.0]
    assert free >= result.static_total  # re-solving can't predict worse
    # The free gain is modest: the average matrix already captures most
    # of the structure (within 10 %).
    assert free / result.static_total - 1 < 0.10
    # A realistic migration penalty flips the comparison to static.
    assert result.crossover_penalty() <= 0.20
