"""Fig 15 — amortized monthly datacenter TCO for the four policies.

Paper artifact: Hamilton-model TCO (100 000 servers, $1450/server, $9/W,
7 c/kWh, PUE 1.1) at constant delivered throughput: "Pocolo results in
12%, 16% and 8% lower TCO compared to Random(NoCap), Random and POM
respectively", with Random(NoCap) paying the most power-infrastructure
capex.

Shape to reproduce: POColo cheapest overall; POM second; NoCap pays the
highest infra bill.  (Our gaps are compressed — see EXPERIMENTS.md.)
"""

from repro.analysis import format_table
from repro.evaluation.tco_eval import fig15_tco


def test_fig15_tco(benchmark, emit, catalog):
    ev = benchmark.pedantic(
        fig15_tco, args=(catalog,),
        kwargs={"placement_seeds": range(4), "duration_s": 25.0},
        rounds=1, iterations=1,
    )

    rows = []
    for name, b in ev.breakdowns.items():
        rows.append([
            name, b.num_servers, b.servers_usd / 1e6, b.power_infra_usd / 1e6,
            b.energy_usd / 1e6, b.total_usd / 1e6,
        ])
    emit("fig15_tco", format_table(
        ["policy", "servers", "server $M/mo", "infra $M/mo",
         "energy $M/mo", "total $M/mo"],
        rows, precision=2,
        title="Fig 15 — amortized monthly TCO "
              "(paper: Pocolo -12%/-16%/-8% vs NoCap/Random/POM)",
    ))
    emit("fig15_savings", format_table(
        ["vs policy", "pocolo saves"],
        [[k, f"{v:.1%}"] for k, v in ev.savings_of_pocolo.items()],
        title="POColo TCO savings",
    ))

    totals = {name: b.total_usd for name, b in ev.breakdowns.items()}
    assert min(totals, key=totals.get) == "pocolo"
    assert totals["pom"] < totals["random"]
    assert (ev.breakdowns["random-nocap"].power_infra_usd
            > ev.breakdowns["random"].power_infra_usd)
    assert all(s > 0 for s in ev.savings_of_pocolo.values())
