"""Ablation A6 — the k=3 resource generalization (our addition).

Section III claims the indirect-utility machinery generalizes "for more
than two types of resources"; Section V-G lists memory bandwidth as the
natural third axis.  This benchmark runs the full profile → fit →
least-power pipeline on a synthetic 3-resource application (cores, LLC
ways, memory-bandwidth units) and checks the generalization holds:

* the k-regressor fit recovers the 3-way preference vector;
* the k-dimensional least-power projection tracks the dual closed form
  across the load range (the expansion path stays a ray in 3-D).
"""

import numpy as np

from repro.analysis import format_table
from repro.core.multires import (
    fit_k_model,
    integer_min_power_allocation_k,
    make_three_resource_app,
    profile_k_resources,
    profiling_grid_k,
)


def run_three_resource_pipeline():
    app = make_three_resource_app()
    grid = profiling_grid_k(app.limits, points_per_axis=4)
    samples = profile_k_resources(app, grid, rng=np.random.default_rng(3))
    model, r2_perf, r2_power = fit_k_model(samples)
    full = model.performance(tuple(float(x) for x in app.limits))
    allocations = {
        frac: integer_min_power_allocation_k(model, frac * full, app.limits)
        for frac in (0.2, 0.4, 0.6, 0.8)
    }
    return app, model, r2_perf, r2_power, allocations


def test_abl6_three_resources(benchmark, emit):
    app, model, r2_perf, r2_power, allocations = benchmark.pedantic(
        run_three_resource_pipeline, rounds=1, iterations=1
    )

    pref = model.preference_vector()
    true = app.true_preference_vector()
    rows = [
        [name, fitted, true_v]
        for (name, fitted), true_v in zip(pref.items(), true)
    ]
    emit("abl6_three_resources_prefs", format_table(
        ["resource", "fitted pref", "true pref"], rows,
        title=f"Ablation A6 — 3-resource fit "
              f"(R2 perf {r2_perf:.2f}, power {r2_power:.2f})",
    ))
    rows = [
        [f"{frac:.0%}", c, w, b, model.power_w((c, w, b))]
        for frac, (c, w, b) in allocations.items()
    ]
    emit("abl6_three_resources_path", format_table(
        ["perf target", "cores", "ways", "membw", "model W"],
        rows, precision=1,
        title="3-D least-power expansion path",
    ))

    assert 0.80 <= r2_perf <= 1.0 and 0.90 <= r2_power <= 1.0
    for (name, fitted), true_v in zip(pref.items(), true):
        assert abs(fitted - true_v) < 0.06
    # The discrete path is monotone in every axis and respects limits.
    ordered = [allocations[f] for f in sorted(allocations)]
    for lo, hi in zip(ordered, ordered[1:]):
        assert all(b >= a for a, b in zip(lo, hi))
    for point in ordered:
        assert all(1 <= point[j] <= app.limits[j] for j in range(3))
