"""Enforce-mode guard runs: golden scenarios and the fault matrix stay clean.

The acceptance criterion for the guard subsystem's false-positive rate:
the healthy control stack, run under ``GuardConfig(mode="enforce")``,
completes every policy sweep and every crash/fault matrix cell without
a single invariant violation — so anything enforce mode ever kills is
signal.  The flip side is pinned too: a planted contract breach fails
the cell immediately instead of producing a quietly wrong number.
"""

import pytest

from repro.errors import ExecutionError, InvariantViolationError
from repro.evaluation import placement_for_policy, run_policy
from repro.evaluation.pipeline import cluster_plans
from repro.faults import (
    ClusterFaultPlan,
    FaultSchedule,
    MeterStuckAt,
    ServerCrash,
)
from repro.guard import GuardConfig
from repro.sim import SimConfig, run_cluster
from repro.sim.colocation import ColocationSim, build_colocated_server
from repro.workloads.traces import ConstantTrace

FAST = SimConfig(seed=0, warmup_s=2.0)
ENFORCE = GuardConfig(mode="enforce")


@pytest.fixture(scope="module")
def plans(catalog):
    placement = placement_for_policy(catalog, "pocolo")
    return cluster_plans(catalog, placement, "pocolo")


def _flat(result):
    return [
        (o.lc_name, o.be_name, o.level, o.result.avg_be_throughput_norm,
         o.result.avg_power_w, o.result.energy_kwh)
        for o in result.outcomes
    ]


class TestEnforceCleanRuns:
    @pytest.mark.slow
    @pytest.mark.parametrize("policy", ["pocolo", "pom"])
    def test_policy_sweep_completes_in_enforce_mode(self, catalog, policy):
        result = run_policy(
            catalog, policy, levels=[0.3, 0.7], duration_s=6.0,
            sim_config=FAST, guard=ENFORCE,
        )
        reports = [o.result.guard_report for o in result.outcomes]
        assert reports and all(r is not None for r in reports)
        assert all(r.mode == "enforce" and r.clean for r in reports)
        assert all(r.checks > 0 for r in reports)

    @pytest.mark.slow
    def test_fault_matrix_completes_in_enforce_mode(self, plans, catalog):
        """Crash, recovery and a stuck meter — the guards excuse all of
        the *controller's* correct degradations."""
        crashed = plans[0].lc_app.name
        fault_plan = ClusterFaultPlan(
            crashes=(ServerCrash(crashed, at_level_index=1,
                                 recover_at_level_index=2),),
            cell_faults=FaultSchedule([
                MeterStuckAt(start_s=1.0, duration_s=3.0)
            ]),
        )
        run = run_cluster(
            plans, catalog.spec, levels=[0.3, 0.5, 0.7], duration_s=6.0,
            config=FAST, fault_plan=fault_plan, guard=ENFORCE,
        )
        assert run.fault_report is not None
        assert run.fault_report.crashes_handled == 1
        reports = [o.result.guard_report for o in run.outcomes]
        assert reports and all(r is not None and r.clean for r in reports)


class TestGuardsObserveNeverSteer:
    def test_guarded_results_bit_identical_to_unguarded(self, plans, catalog):
        base = run_cluster(plans[:2], catalog.spec, levels=[0.5],
                           duration_s=6.0, config=FAST)
        guarded = run_cluster(plans[:2], catalog.spec, levels=[0.5],
                              duration_s=6.0, config=FAST,
                              guard=GuardConfig())
        assert _flat(base) == _flat(guarded)
        assert all(o.result.guard_report is None for o in base.outcomes)
        assert all(o.result.guard_report is not None
                   for o in guarded.outcomes)


class TestEnforceFailsFast:
    #: A floor no allocation can meet: the first checked tick violates.
    def _impossible(self, catalog):
        return GuardConfig(mode="enforce",
                           lc_min_cores=catalog.spec.cores + 1)

    def test_sim_raises_invariant_violation(self, catalog, plans):
        plan = plans[0]
        server = build_colocated_server(
            spec=catalog.spec, lc_app=plan.lc_app,
            provisioned_power_w=plan.provisioned_power_w,
            be_app=plan.be_app,
        )
        sim = ColocationSim(
            server=server, lc_app=plan.lc_app, trace=ConstantTrace(0.5),
            manager=plan.manager_factory(server), be_app=plan.be_app,
            config=FAST, guard=self._impossible(catalog),
        )
        with pytest.raises(InvariantViolationError, match="lc-slo-floor"):
            sim.run(4.0)

    def test_cluster_cell_failure_names_the_violation(self, plans, catalog):
        # Through the engine the cell failure is wrapped, but the
        # invariant name must survive into the ExecutionError message.
        with pytest.raises(ExecutionError, match="InvariantViolationError"):
            run_cluster(plans[:1], catalog.spec, levels=[0.5],
                        duration_s=4.0, config=FAST,
                        guard=self._impossible(catalog))
