"""Stateful property-based tests: isolation invariants under random ops.

Hypothesis drives random operation sequences against the allocators and
the server facade, checking after every step the invariants the paper's
isolation story depends on:

* core sets of different tenants never overlap, and never exceed the
  server's core count;
* CAT way masks are contiguous, disjoint, and within the LLC;
* the server's spare + tenants' holdings always partition the machine;
* total power is always idle + the sum of tenant draws (additivity).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.errors import AllocationError
from repro.hwmodel.cache import CacheAllocator
from repro.hwmodel.cpu import CoreAllocator
from repro.hwmodel.server import PRIMARY, SECONDARY, Server
from repro.hwmodel.spec import Allocation, ServerSpec

TENANTS = ("lc", "be1", "be2")


class CoreAllocatorMachine(RuleBasedStateMachine):
    """Random assign/release sequences against the core allocator."""

    def __init__(self):
        super().__init__()
        self.spec = ServerSpec()
        self.allocator = CoreAllocator(self.spec)

    @rule(tenant=st.sampled_from(TENANTS), count=st.integers(0, 14))
    def assign(self, tenant, count):
        other_total = sum(
            len(self.allocator.cores_of(t)) for t in TENANTS if t != tenant
        )
        if count <= self.spec.cores - other_total:
            self.allocator.assign(tenant, count)
            assert len(self.allocator.cores_of(tenant)) == count
        else:
            try:
                self.allocator.assign(tenant, count)
            except AllocationError:
                pass
            else:  # pragma: no cover - the assertion is the test
                raise AssertionError("oversubscription silently accepted")

    @rule(tenant=st.sampled_from(TENANTS))
    def release(self, tenant):
        self.allocator.release(tenant)
        assert self.allocator.cores_of(tenant) == frozenset()

    @invariant()
    def tenants_disjoint(self):
        seen = set()
        for tenant in TENANTS:
            cores = self.allocator.cores_of(tenant)
            assert not cores & seen
            seen |= cores
        assert seen <= set(range(self.spec.cores))

    @invariant()
    def free_plus_owned_is_everything(self):
        owned = set()
        for tenant in TENANTS:
            owned |= self.allocator.cores_of(tenant)
        assert owned | self.allocator.free_cores() == set(range(self.spec.cores))


class CacheAllocatorMachine(RuleBasedStateMachine):
    """Random masking sequences against the CAT allocator."""

    def __init__(self):
        super().__init__()
        self.spec = ServerSpec()
        self.allocator = CacheAllocator(self.spec, primary_tenant="lc")

    @rule(tenant=st.sampled_from(TENANTS), count=st.integers(0, 22))
    def assign(self, tenant, count):
        try:
            self.allocator.assign(tenant, count)
        except AllocationError:
            pass

    @rule(tenant=st.sampled_from(TENANTS))
    def release(self, tenant):
        self.allocator.release(tenant)
        assert self.allocator.ways_of(tenant) == 0

    @invariant()
    def masks_disjoint_and_contiguous(self):
        combined = 0
        for tenant in TENANTS:
            mask = self.allocator.mask_of(tenant)
            assert mask & combined == 0, "overlapping CAT masks"
            combined |= mask
            if mask:
                bits = bin(mask)[2:]
                assert "0" not in bits.strip("0"), "non-contiguous mask"
        assert combined < (1 << self.spec.llc_ways)

    @invariant()
    def primary_anchored_low(self):
        mask = self.allocator.mask_of("lc")
        if mask:
            assert mask & 1, "primary mask must start at way 0"

    @invariant()
    def way_accounting_consistent(self):
        total = sum(self.allocator.ways_of(t) for t in TENANTS)
        assert total + self.allocator.free_ways() == self.spec.llc_ways


class _FlatModel:
    def __init__(self, per_core, per_way):
        self.per_core = per_core
        self.per_way = per_way

    def active_power_w(self, alloc):
        return alloc.cores * self.per_core + alloc.ways * self.per_way


class ServerMachine(RuleBasedStateMachine):
    """Random allocation traffic against the full server facade."""

    def __init__(self):
        super().__init__()
        self.spec = ServerSpec()
        self.server = Server(self.spec, provisioned_power_w=150.0)
        self.models = {
            "lc": _FlatModel(3.0, 1.0),
            "be1": _FlatModel(2.0, 2.0),
            "be2": _FlatModel(5.0, 0.5),
        }
        self.server.attach("lc", self.models["lc"], role=PRIMARY)
        self.server.attach("be1", self.models["be1"], role=SECONDARY)
        self.server.attach("be2", self.models["be2"], role=SECONDARY)

    @rule(
        tenant=st.sampled_from(TENANTS),
        cores=st.integers(0, 12),
        ways=st.integers(0, 20),
        freq=st.sampled_from([1.2, 1.5, 1.8, 2.2]),
        duty=st.sampled_from([0.25, 0.5, 1.0]),
    )
    def apply(self, tenant, cores, ways, freq, duty):
        if cores > 0 and ways == 0:
            return  # invalid shape by construction
        alloc = (
            Allocation(cores=cores, ways=ways, freq_ghz=freq, duty_cycle=duty)
            if cores > 0 else Allocation.empty()
        )
        try:
            applied = self.server.apply_allocation(tenant, alloc)
        except AllocationError:
            return
        assert applied.cores == cores
        assert applied.ways == (ways if cores > 0 else 0)

    @rule(tenant=st.sampled_from(TENANTS))
    def park(self, tenant):
        self.server.release_allocation(tenant)
        assert self.server.allocation_of(tenant).is_empty

    @invariant()
    def resources_partition_the_machine(self):
        total_cores = sum(
            self.server.allocation_of(t).cores for t in TENANTS
        )
        total_ways = sum(self.server.allocation_of(t).ways for t in TENANTS)
        spare = self.server.spare_allocation()
        assert total_cores <= self.spec.cores
        assert total_ways <= self.spec.llc_ways
        if not spare.is_empty:
            assert total_cores + spare.cores == self.spec.cores
            assert total_ways + spare.ways == self.spec.llc_ways

    @invariant()
    def power_is_additive(self):
        expected = self.spec.idle_power_w
        for tenant in TENANTS:
            alloc = self.server.allocation_of(tenant)
            if not alloc.is_empty:
                expected += self.models[tenant].active_power_w(alloc) * alloc.duty_cycle
        assert abs(self.server.power_w() - expected) < 1e-9


TestCoreAllocatorMachine = CoreAllocatorMachine.TestCase
TestCacheAllocatorMachine = CacheAllocatorMachine.TestCase
TestServerMachine = ServerMachine.TestCase

for case in (TestCoreAllocatorMachine, TestCacheAllocatorMachine, TestServerMachine):
    case.settings = settings(max_examples=25, stateful_step_count=30,
                             deadline=None)
