"""Tests for repro.evaluation.motivation: Figs 1-4 invariants."""

import pytest

from repro.apps.catalog import XAPIAN_MOTIVATION_CAPACITY_W
from repro.errors import CapacityError, ConfigError
from repro.evaluation.motivation import (
    fig1_diurnal_overshoot,
    fig2_power_overshoot,
    fig3_capped_throughput,
    fig4_load_spectrum,
    true_min_power_allocation,
)


class TestTrueMinPowerAllocation:
    def test_xapian_anchor(self, xapian):
        alloc = true_min_power_allocation(xapian, 0.10)
        assert alloc.cores == 1
        assert alloc.ways <= 3

    def test_allocation_serves_load(self, xapian):
        for level in (0.1, 0.5, 0.9):
            alloc = true_min_power_allocation(xapian, level)
            assert xapian.slack(level * xapian.peak_load, alloc) >= 0.0

    def test_monotone_power_in_load(self, xapian):
        powers = [
            xapian.profile.server_power_w(true_min_power_allocation(xapian, level))
            for level in (0.1, 0.4, 0.7, 0.95)
        ]
        assert powers == sorted(powers)

    def test_impossible_slack_raises(self, xapian):
        with pytest.raises(CapacityError):
            true_min_power_allocation(xapian, 1.0, slack_target=0.9)

    def test_invalid_fraction_rejected(self, xapian):
        with pytest.raises(ConfigError):
            true_min_power_allocation(xapian, 1.5)


class TestFig1:
    def test_overshoot_only_off_peak(self):
        points, capacity = fig1_diurnal_overshoot()
        assert len(points) == 24
        over = [p for p in points if p.power_colocated_w > capacity + 1e-9]
        assert len(over) >= 6  # a solid block of off-peak overshoot hours
        # Peak (non-admitted) hours stay within the right-sized capacity.
        for p in points:
            if p.load_fraction > 0.75:
                assert p.power_colocated_w <= capacity + 1e-9

    def test_core_utilization_never_exceeds_one(self):
        points, _ = fig1_diurnal_overshoot()
        assert all(p.core_utilization <= 1.0 + 1e-9 for p in points)

    def test_capacity_defaults_to_daily_peak(self):
        points, capacity = fig1_diurnal_overshoot()
        assert capacity == pytest.approx(max(p.power_lc_only_w for p in points))

    def test_explicit_capacity_respected(self):
        _, capacity = fig1_diurnal_overshoot(capacity_w=140.0)
        assert capacity == 140.0


class TestFig2:
    def test_every_be_app_overshoots(self):
        draws = fig2_power_overshoot()
        assert set(draws) == {"lstm", "rnn", "graph", "pbzip"}
        for name, draw in draws.items():
            assert draw > XAPIAN_MOTIVATION_CAPACITY_W

    def test_range_matches_paper(self):
        """Paper: 138-155 W, i.e. ~5-17 % above the 132 W capacity."""
        draws = fig2_power_overshoot()
        rel = {n: d / XAPIAN_MOTIVATION_CAPACITY_W - 1 for n, d in draws.items()}
        assert 0.02 <= min(rel.values()) <= 0.08
        assert 0.12 <= max(rel.values()) <= 0.22

    def test_graph_is_worst(self):
        draws = fig2_power_overshoot()
        assert max(draws, key=draws.get) == "graph"


class TestFig3:
    def test_drop_ordering_matches_paper(self):
        """LSTM/RNN lose a few percent, Graph ~20 %, pbzip in between."""
        rows = {r.be_name: r for r in fig3_capped_throughput()}
        assert rows["lstm"].drop_fraction < 0.08
        assert rows["rnn"].drop_fraction < 0.08
        assert 0.15 <= rows["graph"].drop_fraction <= 0.30
        assert rows["rnn"].drop_fraction < rows["pbzip"].drop_fraction
        assert rows["pbzip"].drop_fraction < rows["graph"].drop_fraction

    def test_capped_never_exceeds_uncapped(self):
        for row in fig3_capped_throughput():
            assert row.capped_norm <= row.uncapped_norm + 1e-9

    def test_throttle_mechanism_recorded(self):
        rows = {r.be_name: r for r in fig3_capped_throughput()}
        # Graph must have been frequency-throttled well below max.
        assert rows["graph"].final_freq_ghz < 2.0
        # LSTM barely moves.
        assert rows["lstm"].final_freq_ghz >= 1.9


class TestFig4:
    def test_rnn_beats_lstm_at_all_loads(self):
        curves = fig4_load_spectrum(levels=[0.1, 0.3, 0.5, 0.7])
        for (l_level, l_tput), (r_level, r_tput) in zip(curves["lstm"], curves["rnn"]):
            assert l_level == r_level
            assert r_tput >= l_tput - 1e-9

    def test_throughput_decreases_with_lc_load(self):
        curves = fig4_load_spectrum(levels=[0.1, 0.5, 0.9])
        for series in curves.values():
            tputs = [t for _, t in series]
            assert tputs == sorted(tputs, reverse=True)

    def test_custom_app_selection(self):
        curves = fig4_load_spectrum(be_names=("graph",), levels=[0.2])
        assert set(curves) == {"graph"}
