"""Tests for repro.sim.telemetry: time-series collection."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.telemetry import Telemetry, TimeSeries


class TestTimeSeries:
    def test_record_and_len(self):
        s = TimeSeries(name="power")
        s.record(0.0, 100.0)
        s.record(1.0, 110.0)
        assert len(s) == 2
        assert not s.empty

    def test_out_of_order_rejected(self):
        s = TimeSeries(name="power")
        s.record(5.0, 1.0)
        # A time going backwards is a simulation-state fault, not a
        # configuration mistake.
        with pytest.raises(SimulationError):
            s.record(4.0, 2.0)

    def test_equal_times_allowed(self):
        s = TimeSeries(name="power")
        s.record(1.0, 1.0)
        s.record(1.0, 2.0)
        assert len(s) == 2

    def test_mean(self):
        s = TimeSeries(name="x")
        for t, v in enumerate([1.0, 2.0, 3.0]):
            s.record(float(t), v)
        assert s.mean() == pytest.approx(2.0)

    def test_empty_statistics(self):
        s = TimeSeries(name="x")
        assert s.mean() == 0.0
        assert s.maximum() == 0.0
        assert s.percentile(99) == 0.0
        assert s.fraction_above(0.0) == 0.0
        assert s.time_weighted_mean() == 0.0

    def test_time_weighted_mean(self):
        s = TimeSeries(name="x")
        s.record(0.0, 10.0)   # holds for 1 s
        s.record(1.0, 20.0)   # holds for 3 s
        s.record(4.0, 99.0)   # endpoint, no holding time
        assert s.time_weighted_mean() == pytest.approx((10.0 + 60.0) / 4.0)

    def test_time_weighted_falls_back_on_zero_span(self):
        s = TimeSeries(name="x")
        s.record(1.0, 10.0)
        s.record(1.0, 30.0)
        assert s.time_weighted_mean() == pytest.approx(20.0)

    def test_percentile(self):
        s = TimeSeries(name="x")
        for i in range(101):
            s.record(float(i), float(i))
        assert s.percentile(50) == pytest.approx(50.0)
        assert s.percentile(99) == pytest.approx(99.0)
        with pytest.raises(ConfigError):
            s.percentile(101)

    def test_fraction_above(self):
        s = TimeSeries(name="x")
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            s.record(float(i), v)
        assert s.fraction_above(2.5) == pytest.approx(0.5)
        assert s.fraction_above(10.0) == 0.0

    def test_maximum_and_arrays(self):
        s = TimeSeries(name="x")
        s.record(0.0, 5.0)
        s.record(1.0, 3.0)
        assert s.maximum() == 5.0
        times, values = s.as_arrays()
        assert list(times) == [0.0, 1.0]
        assert list(values) == [5.0, 3.0]


class TestTelemetry:
    def test_series_created_on_demand(self):
        t = Telemetry()
        assert "power" not in t
        t.record("power", 0.0, 100.0)
        assert "power" in t
        assert t.series("power").mean() == 100.0

    def test_names_in_creation_order(self):
        t = Telemetry()
        t.record("b", 0.0, 1.0)
        t.record("a", 0.0, 1.0)
        assert t.names() == ("b", "a")

    def test_same_series_instance(self):
        t = Telemetry()
        assert t.series("x") is t.series("x")


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        import csv
        from repro.sim.telemetry import write_csv

        t = Telemetry()
        t.record("power_w", 0.0, 100.0)
        t.record("power_w", 1.0, 110.0)
        t.record("slack", 0.0, 0.4)
        path = tmp_path / "telemetry.csv"
        rows = write_csv(t, path)
        assert rows == 3
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert parsed[0] == {"series": "power_w", "time_s": "0.0", "value": "100.0"}
        assert {r["series"] for r in parsed} == {"power_w", "slack"}

    def test_empty_bundle(self, tmp_path):
        from repro.sim.telemetry import write_csv

        path = tmp_path / "empty.csv"
        assert write_csv(Telemetry(), path) == 0
        assert path.read_text().startswith("series,time_s,value")
