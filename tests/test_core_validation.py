"""Tests for repro.core.validation: fit diagnostics and the §V-G caveat."""

import numpy as np
import pytest

from repro.core.fitting import ProfileSample, fit_indirect_utility
from repro.core.profiler import (
    default_profiling_grid,
    profile_best_effort,
    profile_latency_critical,
)
from repro.core.validation import (
    FitDiagnostics,
    diagnose_fit,
    leontief_samples,
)
from repro.errors import ConfigError


class TestCatalogPasses:
    """Every paper application must come out trustworthy and rankable."""

    def test_be_apps(self, catalog):
        grid = default_profiling_grid(catalog.spec)
        rng = np.random.default_rng(42)
        for app in catalog.be_apps.values():
            diag = diagnose_fit(profile_best_effort(app, grid, rng))
            assert diag.trustworthy, (app.name, diag.warnings)
            assert diag.preference_rankable

    def test_lc_apps(self, catalog):
        grid = default_profiling_grid(catalog.spec)
        rng = np.random.default_rng(42)
        for app in catalog.lc_apps.values():
            diag = diagnose_fit(
                profile_latency_critical(app, grid, load_fraction=0.3, rng=rng)
            )
            assert diag.trustworthy, (app.name, diag.warnings)

    def test_residual_trend_small_for_catalog(self, catalog):
        grid = default_profiling_grid(catalog.spec)
        rng = np.random.default_rng(42)
        for app in catalog.be_apps.values():
            diag = diagnose_fit(profile_best_effort(app, grid, rng))
            assert diag.residual_trend < 0.35


class TestLeontiefStress:
    """The §V-G caveat: perfect complements break the framework — and the
    diagnostics must say so."""

    def test_flagged_untrustworthy(self):
        diag = diagnose_fit(leontief_samples())
        assert not diag.trustworthy  # the substitution detector fires

    def test_residual_trend_detector_fires(self):
        diag = diagnose_fit(leontief_samples(noise=0.02))
        assert diag.residual_trend > 0.5
        assert any("Leontief" in w for w in diag.warnings)

    def test_preference_unrankable(self):
        diag = diagnose_fit(leontief_samples())
        lo, hi = diag.pref_cores_ci
        assert lo <= 0.5 <= hi
        assert not diag.preference_rankable

    def test_balanced_catalog_app_is_trusted_but_near_tie(self, catalog):
        """tpcc's 0.45:0.55 preference is honest balance, not bad fit:
        trusted, possibly unrankable — the paper's interchangeable pair."""
        grid = default_profiling_grid(catalog.spec)
        rng = np.random.default_rng(42)
        samples = profile_latency_critical(
            catalog.lc_apps["tpcc"], grid, load_fraction=0.3, rng=rng
        )
        diag = diagnose_fit(samples)
        assert diag.trustworthy
        lo, hi = diag.pref_cores_ci
        assert lo < 0.55 and hi > 0.40  # centered near balance

    def test_leontief_ground_truth_shape(self):
        samples = leontief_samples(noise=0.0)
        by_key = {(s.cores, s.ways): s.perf for s in samples}
        # Extra ways beyond the binding core ratio buy nothing.
        assert by_key[(1, 5)] == pytest.approx(by_key[(1, 20)])
        # Extra cores beyond the binding way ratio buy nothing.
        assert by_key[(4, 2)] == pytest.approx(by_key[(2, 2)])


class TestThresholdKnobs:
    def test_r2_threshold_fires(self, catalog):
        grid = default_profiling_grid(catalog.spec)
        rng = np.random.default_rng(1)
        samples = profile_best_effort(catalog.be_apps["rnn"], grid, rng)
        diag = diagnose_fit(samples, min_r2_perf=0.999)
        assert any("performance R2" in w for w in diag.warnings)

    def test_returns_to_scale_threshold_fires(self):
        # A deliberately super-linear world: perf = (c*w)^1.0 -> rts = 2.
        samples = [
            ProfileSample(cores=c, ways=w, perf=float(c * w),
                          power_w=5.0 + 2.0 * c + 1.0 * w)
            for c in (1, 2, 4, 8, 12)
            for w in (2, 5, 10, 20)
        ]
        diag = diagnose_fit(samples)
        assert diag.returns_to_scale == pytest.approx(2.0, abs=0.01)
        assert any("returns to scale" in w for w in diag.warnings)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigError):
            diagnose_fit(leontief_samples()[:4])

    def test_accepts_prefit_model(self, catalog):
        grid = default_profiling_grid(catalog.spec)
        rng = np.random.default_rng(2)
        samples = profile_best_effort(catalog.be_apps["graph"], grid, rng)
        fit = fit_indirect_utility(samples)
        diag = diagnose_fit(samples, fit=fit)
        assert isinstance(diag, FitDiagnostics)
        assert diag.r2_perf == fit.r2_perf
