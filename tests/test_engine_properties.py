"""Property-based tests for the execution engine (Hypothesis).

Structural invariants that must hold for *any* valid model, not just the
paper's catalog:

* permuting the BE apps / LC servers permutes the performance matrix's
  rows / columns and changes nothing else;
* the memoized spare-capacity solve equals the uncached solve;
* the batched throughput prediction equals the scalar one, cell by cell;
* the assignment produced by ``assign_with_fallback`` is invariant under
  scaling the whole matrix by a constant factor (power-of-two factors,
  so the scaling itself is float-exact and ties cannot flip).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import (
    LcServerSide,
    assign_with_fallback,
    build_performance_matrix,
    predict_be_throughput,
    predict_spare_capacity,
)
from repro.core.utility import (
    CobbDouglasParams,
    IndirectUtilityModel,
    LinearPowerParams,
)
from repro.engine.vectorized import (
    cached_spare_capacity,
    predict_be_throughput_batch,
)
from repro.hwmodel.spec import Allocation, ServerSpec

SPEC = ServerSpec()

alpha = st.floats(min_value=0.15, max_value=1.2)
alpha0 = st.floats(min_value=0.5, max_value=5.0)
p_marginal = st.floats(min_value=0.5, max_value=8.0)
p_static = st.floats(min_value=0.0, max_value=55.0)
level = st.floats(min_value=0.05, max_value=1.0)


@st.composite
def models(draw):
    return IndirectUtilityModel(
        perf=CobbDouglasParams(
            alpha0=draw(alpha0), alphas=(draw(alpha), draw(alpha))
        ),
        power=LinearPowerParams(
            p_static=draw(p_static), p=(draw(p_marginal), draw(p_marginal))
        ),
    )


@st.composite
def lc_servers(draw, name="lc"):
    return LcServerSide(
        name=name,
        model=draw(models()),
        provisioned_power_w=draw(st.floats(min_value=80.0, max_value=220.0)),
        peak_load=draw(st.floats(min_value=10.0, max_value=100.0)),
    )


class TestPermutationInvariance:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_matrix_permutes_with_inputs(self, data):
        n_lc = data.draw(st.integers(min_value=2, max_value=4))
        n_be = data.draw(st.integers(min_value=2, max_value=4))
        servers = [
            data.draw(lc_servers(name=f"lc-{i}")) for i in range(n_lc)
        ]
        be_models = {f"be-{i}": data.draw(models()) for i in range(n_be)}
        levels = (0.25, 0.75)

        base = build_performance_matrix(servers, be_models, SPEC, levels=levels)

        lc_perm = data.draw(st.permutations(range(n_lc)))
        be_perm = data.draw(st.permutations(range(n_be)))
        servers_p = [servers[j] for j in lc_perm]
        be_names = list(be_models)
        be_models_p = {be_names[i]: be_models[be_names[i]] for i in be_perm}
        permuted = build_performance_matrix(
            servers_p, be_models_p, SPEC, levels=levels
        )

        assert permuted.lc_names == tuple(servers[j].name for j in lc_perm)
        assert permuted.be_names == tuple(be_names[i] for i in be_perm)
        for i_new, i_old in enumerate(be_perm):
            for j_new, j_old in enumerate(lc_perm):
                assert permuted.values[i_new, j_new] == base.values[i_old, j_old]


class TestMemoization:
    @settings(max_examples=50, deadline=None)
    @given(lc_servers(), level)
    def test_cached_spare_capacity_equals_uncached(self, lc, lvl):
        spare_u, budget_u = predict_spare_capacity(lc, SPEC, lvl)
        spare_c, budget_c = cached_spare_capacity(lc, SPEC, lvl)
        assert spare_c == spare_u
        assert budget_c == budget_u
        # A second hit returns the same values (the cache cannot drift).
        spare_c2, budget_c2 = cached_spare_capacity(lc, SPEC, lvl)
        assert (spare_c2, budget_c2) == (spare_c, budget_c)


class TestBatchedPrediction:
    @settings(max_examples=50, deadline=None)
    @given(
        models(),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=SPEC.cores),
                st.integers(min_value=0, max_value=SPEC.llc_ways),
                st.floats(min_value=0.0, max_value=250.0),
            ),
            min_size=1,
            max_size=12,
        ),
    )
    def test_batch_equals_scalar(self, be_model, cells):
        # cores > 0 with ways == 0 is not a constructible Allocation;
        # fold that corner onto the parked (0, 0) spare.
        spares = [
            Allocation(cores=c, ways=w) if (c == 0 or w > 0)
            else Allocation(cores=0, ways=0)
            for c, w, _b in cells
        ]
        budgets = [b for _c, _w, b in cells]
        batch = predict_be_throughput_batch(be_model, SPEC, spares, budgets)
        scalar = [
            predict_be_throughput(be_model, SPEC, spare, budget)
            for spare, budget in zip(spares, budgets)
        ]
        assert batch.tolist() == scalar


class TestAssignmentScaling:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10 ** 6),
        st.integers(min_value=-8, max_value=8),
    )
    def test_objective_invariant_under_constant_scaling(
        self, n_be, n_lc, seed, exponent
    ):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 1.0, size=(n_be, n_lc))
        factor = float(2.0 ** exponent)

        base_assignment, base_total, base_method, _ = assign_with_fallback(values)
        scaled_assignment, scaled_total, scaled_method, _ = assign_with_fallback(
            values * factor
        )
        assert scaled_assignment == base_assignment
        assert scaled_method == base_method
        assert scaled_total == pytest.approx(base_total * factor, rel=1e-12)
