"""Tests for repro.hwmodel.attribution: per-tenant power accounting."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hwmodel.attribution import AttributedPowerMeter, attribution_shift
from repro.hwmodel.server import PRIMARY, SECONDARY, Server
from repro.hwmodel.spec import Allocation


class FlatModel:
    def __init__(self, per_core, per_way):
        self.per_core = per_core
        self.per_way = per_way

    def active_power_w(self, alloc):
        return alloc.cores * self.per_core + alloc.ways * self.per_way


@pytest.fixture()
def server(spec):
    s = Server(spec, provisioned_power_w=150.0)
    s.attach("lc", FlatModel(3.0, 1.0), role=PRIMARY)
    s.attach("be", FlatModel(2.0, 2.0), role=SECONDARY)
    s.apply_allocation("lc", Allocation(cores=6, ways=10))
    s.apply_allocation("be", Allocation(cores=3, ways=5))
    return s


class TestAttributedPowerMeter:
    def test_active_power_matches_server_accounting(self, server):
        readings = AttributedPowerMeter(server).read()
        assert readings["lc"].active_w == pytest.approx(
            server.tenant_power_w("lc")
        )
        assert readings["be"].active_w == pytest.approx(
            server.tenant_power_w("be")
        )

    def test_idle_apportioned_by_resource_share(self, server, spec):
        readings = AttributedPowerMeter(server).read()
        # lc holds 6/12 cores and 10/20 ways -> half the idle power.
        assert readings["lc"].idle_share_w == pytest.approx(
            spec.idle_power_w * 0.5
        )
        # be holds 3/12 and 5/20 -> a quarter.
        assert readings["be"].idle_share_w == pytest.approx(
            spec.idle_power_w * 0.25
        )

    def test_unallocated_pseudo_tenant_closes_the_books(self, server):
        meter = AttributedPowerMeter(server)
        assert meter.conservation_error_w() < 1e-9

    def test_parked_tenant_charged_nothing(self, server):
        server.release_allocation("be")
        readings = AttributedPowerMeter(server).read()
        assert readings["be"].total_w == 0.0

    def test_noise_breaks_conservation_boundedly(self, server):
        meter = AttributedPowerMeter(
            server, rng=np.random.default_rng(0), noise_sigma=0.05
        )
        error = meter.conservation_error_w()
        assert 0.0 < error < 0.2 * server.power_w()

    def test_validation(self, server):
        with pytest.raises(ConfigError):
            AttributedPowerMeter(server, noise_sigma=-0.1)


class TestAttributionShift:
    def test_compresses_toward_balance_preserving_side(self, catalog, spec):
        model = catalog.be_fits["graph"].model  # strongly cores-leaning
        active, shifted = attribution_shift(
            model, spec.idle_power_w, spec.cores, spec.llc_ways
        )
        assert active["cores"] > 0.5
        assert 0.5 < shifted["cores"] < active["cores"]

    def test_ordering_preserved_across_catalog(self, catalog, spec):
        """The placement signal survives the accounting convention."""
        active_shares = {}
        shifted_shares = {}
        for name, fit in catalog.be_fits.items():
            active, shifted = attribution_shift(
                fit.model, spec.idle_power_w, spec.cores, spec.llc_ways
            )
            active_shares[name] = active["cores"]
            shifted_shares[name] = shifted["cores"]
        active_order = sorted(active_shares, key=active_shares.get)
        shifted_order = sorted(shifted_shares, key=shifted_shares.get)
        assert active_order == shifted_order

    def test_zero_idle_is_identity(self, catalog, spec):
        model = catalog.be_fits["lstm"].model
        active, shifted = attribution_shift(model, 0.0, spec.cores, spec.llc_ways)
        assert shifted["cores"] == pytest.approx(active["cores"])

    def test_validation(self, catalog, spec):
        model = catalog.be_fits["lstm"].model
        with pytest.raises(ConfigError):
            attribution_shift(model, -1.0, spec.cores, spec.llc_ways)
        with pytest.raises(ConfigError):
            attribution_shift(model, 10.0, 0, spec.llc_ways)
