"""Package-surface tests: the public API is importable and consistent.

A downstream user's first contact is ``from repro.<pkg> import <name>``;
these tests pin that surface: every ``__all__`` entry resolves, every
package imports cleanly, and the exception hierarchy behaves.
"""

import importlib

import pytest

import repro
from repro.errors import (
    AllocationError,
    CapacityError,
    ConfigError,
    InvariantViolationError,
    ModelFitError,
    ReproError,
    SimulationError,
    SolverError,
)

PACKAGES = (
    "repro",
    "repro.analysis",
    "repro.apps",
    "repro.budget",
    "repro.core",
    "repro.cost",
    "repro.engine",
    "repro.evaluation",
    "repro.guard",
    "repro.hwmodel",
    "repro.runtime",
    "repro.sim",
    "repro.solvers",
    "repro.workloads",
)


class TestPublicSurface:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_duplicate_all_entries(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_key_entry_points_present(self):
        from repro.core import IndirectUtilityModel, PowerOptimizedManager
        from repro.evaluation import fit_catalog, run_policy
        from repro.hwmodel import Server
        from repro.sim import ColocationSim

        for obj in (IndirectUtilityModel, PowerOptimizedManager, fit_catalog,
                    run_policy, Server, ColocationSim):
            assert callable(obj)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        AllocationError, CapacityError, ConfigError,
        InvariantViolationError, ModelFitError, SimulationError,
        SolverError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_family(self):
        with pytest.raises(ReproError):
            raise AllocationError("boom")

    def test_distinct_types(self):
        with pytest.raises(AllocationError):
            raise AllocationError("x")
        with pytest.raises(SolverError):
            raise SolverError("y")

    def test_docstrings_everywhere(self):
        for exc in (ReproError, AllocationError, CapacityError, ConfigError,
                    InvariantViolationError, ModelFitError, SimulationError,
                    SolverError):
            assert exc.__doc__


class TestDocstringCoverage:
    """Every public item of the core packages carries a docstring."""

    @pytest.mark.parametrize("package", [
        "repro.core", "repro.hwmodel", "repro.apps", "repro.sim",
        "repro.solvers", "repro.cost", "repro.workloads", "repro.analysis",
        "repro.runtime", "repro.guard", "repro.budget",
    ])
    def test_exported_items_documented(self, package):
        import inspect

        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            # Type aliases (e.g. Callable aliases) carry no docstring.
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, f"{package}: {undocumented}"
