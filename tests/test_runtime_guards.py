"""Regression tests for the assert -> SimulationError conversions.

Four sites used to guard "the primary tenant is still attached" with
``assert primary is not None``; under ``python -O`` those checks vanish
and the code dereferences ``None`` several frames later.  They now
raise :class:`~repro.errors.SimulationError` with a message naming the
server (and manager), so the guard survives optimization and the
operator can see *which* box lost its primary.  Each test drives the
exact path that used to be an assert.
"""

import pytest

from repro.core.server_manager import HeraclesLikeManager, PowerOptimizedManager
from repro.errors import SimulationError
from repro.sim.colocation import ColocationSim, SimConfig, build_colocated_server
from repro.sim.timeshare import BestEffortJob, FcfsScheduler, TimeSharedColocationSim
from repro.workloads.traces import ConstantTrace


def _colocated(catalog, lc_name="xapian", be_name="rnn"):
    lc = catalog.lc_apps[lc_name]
    be = catalog.be_apps[be_name]
    server = build_colocated_server(
        catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(), be_app=be
    )
    return server, lc, be


class TestManagerPrimaryDetachedGuards:
    def test_control_step_raises_simulation_error(self, catalog):
        server, lc, _ = _colocated(catalog)
        manager = HeraclesLikeManager(server)
        server.detach(server.primary_tenant())
        with pytest.raises(SimulationError, match=r"HeraclesLikeManager.*primary"):
            manager.control_step(measured_load=0.4, measured_slack=0.2)

    def test_control_step_names_the_server(self, catalog):
        server, lc, _ = _colocated(catalog)
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        server.detach(server.primary_tenant())
        with pytest.raises(SimulationError, match=server.name):
            manager.control_step(measured_load=0.4, measured_slack=0.2)

    def test_refresh_secondary_raises_simulation_error(self, catalog):
        server, lc, _ = _colocated(catalog)
        manager = HeraclesLikeManager(server)
        # Detach only the primary: the BE tenant is still there, so the
        # spare-grant refresh reaches the primary lookup and must fail
        # loudly rather than dereference None.
        server.detach(server.primary_tenant())
        assert server.secondary_tenant() is not None
        with pytest.raises(SimulationError, match=r"refreshing the BE spare grant"):
            manager._refresh_secondary()

    def test_guard_survives_python_dash_o(self, catalog):
        """The old asserts disappear under -O; a raise statement cannot."""
        import ast
        import inspect

        import repro.core.server_manager as sm

        tree = ast.parse(inspect.getsource(sm))
        assert not any(isinstance(node, ast.Assert) for node in ast.walk(tree))


class TestSimPrimaryDetachedGuards:
    def test_colocation_run_raises_simulation_error(self, catalog):
        server, lc, be = _colocated(catalog)
        manager = HeraclesLikeManager(server)
        sim = ColocationSim(
            server=server, lc_app=lc, trace=ConstantTrace(0.4),
            manager=manager, be_app=be, config=SimConfig(seed=0),
        )
        server.detach(server.primary_tenant())
        with pytest.raises(SimulationError, match=r"lost its primary tenant"):
            sim.run(duration_s=2.0)

    def test_timeshare_run_raises_simulation_error(self, catalog):
        lc = catalog.lc_apps["xapian"]
        server = build_colocated_server(
            catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w()
        )
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        jobs = [BestEffortJob("j0", catalog.be_apps["rnn"], work_units=1.0)]
        sim = TimeSharedColocationSim(
            server=server, lc_app=lc, trace=ConstantTrace(0.3),
            manager=manager, jobs=jobs, scheduler=FcfsScheduler(),
            config=SimConfig(seed=0, warmup_s=0.0),
        )
        server.detach(server.primary_tenant())
        with pytest.raises(SimulationError, match=r"time-share"):
            sim.run(max_duration_s=2.0)
