"""Tests for repro.apps.catalog: the paper-calibrated application set.

These tests pin the reproduction to the paper's anchor numbers — if a
calibration change breaks one of them, a figure has silently drifted.
"""

import pytest

from repro.apps.catalog import (
    BE_NAMES,
    LC_NAMES,
    NOCAP_PROVISIONED_W,
    REFERENCE_SPEC,
    XAPIAN_MOTIVATION_CAPACITY_W,
    best_effort_apps,
    derive_power_coefficients,
    latency_critical_apps,
    make_be,
    make_lc,
)
from repro.errors import ConfigError
from repro.hwmodel.spec import Allocation, spare_of


class TestRegistries:
    def test_paper_order(self):
        assert LC_NAMES == ("img-dnn", "sphinx", "xapian", "tpcc")
        assert BE_NAMES == ("lstm", "rnn", "graph", "pbzip")

    def test_factories_by_name(self):
        assert make_lc("sphinx").name == "sphinx"
        assert make_be("graph").name == "graph"

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigError):
            make_lc("nginx")
        with pytest.raises(ConfigError):
            make_be("sphinx")  # an LC app is not a BE app

    def test_registries_complete(self, lc_apps, be_apps):
        assert tuple(lc_apps) == LC_NAMES
        assert tuple(be_apps) == BE_NAMES


class TestTable2Anchors:
    """Peak load, SLO latency, and peak power from Table II."""

    @pytest.mark.parametrize("name,peak_load,p99_s,peak_power", [
        ("img-dnn", 3500.0, 0.020, 133.0),
        ("sphinx", 10.0, 3.03, 182.0),
        ("xapian", 4000.0, 0.004020, 154.0),
        ("tpcc", 8000.0, 0.707, 133.0),
    ])
    def test_lc_characteristics(self, lc_apps, name, peak_load, p99_s, peak_power):
        app = lc_apps[name]
        assert app.peak_load == peak_load
        assert app.latency.slo.p99_s == pytest.approx(p99_s)
        assert app.peak_server_power_w() == pytest.approx(peak_power, abs=0.5)


class TestSection2Anchors:
    """The xapian 10 %-load anchor and the Fig 2 colocation range."""

    def test_xapian_low_load_allocation(self, xapian, spec):
        # Paper: ~1 core, 2 ways, ~64 W at 10 % load.
        need = xapian.required_capacity(0.10 * xapian.peak_load, 0.0)
        best = None
        for alloc in spec.iter_allocations():
            if xapian.capacity(alloc) >= need:
                p = xapian.profile.server_power_w(alloc)
                if best is None or p < best[0]:
                    best = (p, alloc)
        power, alloc = best
        assert alloc.cores == 1
        assert alloc.ways <= 3
        assert 60.0 <= power <= 68.0

    def test_fig2_colocation_power_range(self, xapian, be_apps, spec):
        # Paper: naive colocation draws 138-155 W against 132 W capacity.
        lc_alloc = Allocation(cores=1, ways=2)
        spare = spare_of(spec, lc_alloc)
        base = spec.idle_power_w + xapian.active_power_w(lc_alloc)
        draws = [base + be.active_power_w(spare) for be in be_apps.values()]
        assert all(d > XAPIAN_MOTIVATION_CAPACITY_W for d in draws)
        assert 133.0 <= min(draws) <= 140.0
        assert 150.0 <= max(draws) <= 158.0


class TestPreferenceCalibration:
    """Indirect preference vectors from Sections III / V-C."""

    @pytest.mark.parametrize("name,kind,cores_share", [
        ("sphinx", "lc", 0.20),
        ("img-dnn", "lc", 0.75),
        ("lstm", "be", 0.13),
        ("graph", "be", 0.80),
    ])
    def test_paper_quoted_preferences(self, lc_apps, be_apps, name, kind, cores_share):
        app = (lc_apps if kind == "lc" else be_apps)[name]
        ratio = app.profile.true_preference_ratio()
        assert ratio / (1.0 + ratio) == pytest.approx(cores_share, abs=0.01)

    def test_sphinx_direct_vs_indirect_flip(self, lc_apps):
        """The paper's running example: sphinx prefers cores in direct
        utility (0.6:0.4) but ways once power enters (0.2:0.8)."""
        sphinx = lc_apps["sphinx"].profile
        direct_cores = sphinx.perf.alpha_cores / (
            sphinx.perf.alpha_cores + sphinx.perf.alpha_ways
        )
        indirect = sphinx.true_preference_ratio()
        indirect_cores = indirect / (1.0 + indirect)
        assert direct_cores > 0.5
        assert indirect_cores < 0.5

    def test_complementary_pairs(self, lc_apps, be_apps):
        """Graph complements sphinx; LSTM complements img-dnn (Fig 14)."""
        def cores_share(app):
            r = app.profile.true_preference_ratio()
            return r / (1.0 + r)

        assert cores_share(be_apps["graph"]) > 0.5 > cores_share(lc_apps["sphinx"])
        assert cores_share(be_apps["lstm"]) < 0.5 < cores_share(lc_apps["img-dnn"])


class TestDerivePowerCoefficients:
    def test_full_allocation_budget_met(self, spec):
        p_core, p_way = derive_power_coefficients(
            0.6, 0.4, 0.2, 0.8, full_active_w=132.0, static_w=5.0, spec=spec
        )
        total = spec.cores * p_core + spec.llc_ways * p_way
        assert total == pytest.approx(127.0)

    def test_preference_ratio_achieved(self, spec):
        p_core, p_way = derive_power_coefficients(
            0.6, 0.4, 0.2, 0.8, full_active_w=132.0, static_w=5.0, spec=spec
        )
        indirect_c = 0.6 / p_core
        indirect_w = 0.4 / p_way
        assert indirect_c / (indirect_c + indirect_w) == pytest.approx(0.2)

    def test_invalid_inputs_rejected(self, spec):
        with pytest.raises(ConfigError):
            derive_power_coefficients(0.0, 0.4, 0.2, 0.8, 100.0, 5.0, spec)
        with pytest.raises(ConfigError):
            derive_power_coefficients(0.6, 0.4, 0.2, 0.8, 4.0, 5.0, spec)


class TestBestEffortApps:
    def test_units_and_peaks(self, be_apps):
        units = {name: app.unit for name, app in be_apps.items()}
        assert units == {
            "lstm": "samples/s", "rnn": "samples/s",
            "graph": "Medges/s", "pbzip": "MB/s",
        }
        for app in be_apps.values():
            assert app.peak_throughput > 0

    def test_throughput_normalization(self, be_apps, spec):
        for app in be_apps.values():
            assert app.normalized_throughput(spec.full_allocation()) == pytest.approx(1.0)
            assert app.throughput(spec.full_allocation()) == pytest.approx(
                app.peak_throughput
            )

    def test_graph_is_most_power_hungry(self, be_apps):
        powers = {name: app.uncapped_full_power_w() for name, app in be_apps.items()}
        assert max(powers, key=powers.get) == "graph"
        assert min(powers, key=powers.get) in ("lstm", "rnn")

    def test_nocap_provisioning_covers_all_lc_peaks(self, lc_apps):
        assert NOCAP_PROVISIONED_W >= max(
            app.peak_server_power_w() for app in lc_apps.values()
        )
