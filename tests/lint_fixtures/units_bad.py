"""Fixture: every statement here mixes units (POCO101 must flag each)."""


def broken_budget(idle_power_w, energy_joules, duration_s, budget_w):
    bad_sum_w = idle_power_w + energy_joules
    over = energy_joules > budget_w
    headroom_w = budget_w - duration_s
    total_joules = idle_power_w
    bad_sum_w += duration_s
    simulate(power_cap_w=energy_joules)
    return bad_sum_w, over, headroom_w, total_joules


def simulate(power_cap_w):
    return power_cap_w
