"""Callee module: functions whose return units POCO701 must infer."""


def energy_j(power_w, dt_s):
    # watts * seconds -> joules; the summary records "joules".
    return power_w * dt_s


def idle_power_w():
    return 12.5


def sink_power(cap_w, slack_frac):
    return cap_w * slack_frac


def stored_energy(power_w, dt_s):
    # No unit suffix on the function name: the joules return is only
    # knowable from the body, i.e. from the interprocedural summary.
    total_j = power_w * dt_s
    return total_j
