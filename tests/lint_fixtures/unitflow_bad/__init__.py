"""POCO701 bad fixture package: cross-module unit-flow violations.

Every violation here is invisible to POCO101's single-expression suffix
matching — the mismatching unit arrives through a call return, an
untagged local, or a positional parameter binding.
"""
