"""Caller module: every site here receives a unit from another module."""

from unitflow_bad.convert import (
    energy_j,
    idle_power_w,
    sink_power,
    stored_energy,
)


def plan_budget(dt_s):
    raw = energy_j(40.0, dt_s)
    budget_w = raw  # BAD: joules flowed through `raw` into a watts name
    return budget_w


def reserve(dt_s):
    head_w = stored_energy(3.0, dt_s)  # BAD: summary-only joules return
    return head_w


def drain_j():
    return idle_power_w()  # BAD: _j function returns a watts value


def tick(delay_s):
    return sink_power(delay_s, 0.5)  # BAD: positional arg cap_w gets seconds
