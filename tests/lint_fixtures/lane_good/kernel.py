"""Safe lane kernel: copies instead of views, float64, pairwise helper."""

# pocolint: lane-module

import numpy as np


def _np_mean_lanes(buf):
    # The blessed pairwise helper may reduce however it likes.
    return buf.mean(axis=0)


def scale_copy(n):
    power = np.zeros(n)
    evens = power[::2].copy()
    evens += 1.0  # fine: mutating an explicit copy
    return evens


def write_base(n):
    load = np.zeros(2 * n)
    load[:n] = 5.0  # fine: subscript store on the base array itself
    load += 1.0  # fine: in-place on the owning array
    return load


def keep_float64(values):
    buf = np.asarray(values, dtype=float)
    return buf.astype(np.float64)  # fine: widening/explicit float64


def explicit_float_accumulation(n):
    totals = np.full(n, 0.0)
    totals += 0.5  # fine: float lanes declared with a float fill
    return totals


def reduce_through_helper(buf):
    return _np_mean_lanes(buf)  # fine: lane reduction via the helper


def plain_mean(column):
    return np.mean(column)  # fine: no axis= — whole-array reduction
