"""POCO801 good twin: the same shapes done safely."""
