"""Same sinks as the bad twin, fed only deterministic values."""

import numpy as np

from taint_good.sources import ordered_names, stamp


def log_sample(telemetry, sim_time_s):
    tick = stamp(sim_time_s)
    telemetry.record("tick", tick, 1.0)  # fine: sim time is deterministic


def persist(run_id, salt):
    return Checkpoint({"run": run_id, "salt": salt})  # fine: config inputs


def record_rows(ledger_path):
    rows = ordered_names()
    write_ledger(ledger_path, rows)  # fine: sorted() fixed the order


def fan_out(worker, seed):
    draw = np.random.default_rng(seed)
    return map_ordered(worker, [draw])  # fine: seeded generator pickles


class JitterController:
    def export_state(self):
        jitter = 0.0
        return {"jitter": jitter}  # fine: constant state
