"""Deterministic producers: sim time, seeded RNG, sorted iteration."""


def stamp(sim_time_s):
    now = sim_time_s  # simulation-controlled time, not a wall clock
    return now


def ordered_names():
    collected = ()
    for name in sorted({"a", "b", "c"}):
        collected = collected + (name,)
    return collected
