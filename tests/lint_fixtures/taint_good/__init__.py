"""POCO901 good twin: the same sinks fed deterministic values."""
