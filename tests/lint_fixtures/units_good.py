"""Fixture: unit-correct twin of units_bad (POCO101 must stay silent)."""


def sound_budget(idle_power_w, active_power_w, duration_s, budget_joules):
    total_power_w = idle_power_w + active_power_w
    energy_joules = total_power_w * duration_s
    over = energy_joules > budget_joules
    remaining_joules = budget_joules - energy_joules
    avg_power_w = remaining_joules / duration_s
    scaled_power_w = 2.0 * avg_power_w
    utilization = avg_power_w / total_power_w
    simulate(power_cap_w=scaled_power_w)
    return over, utilization


def paper_notation(p_j, r_j, a_w, sum_j, usd_per_kwh):
    # Per-app subscripts (p_j = power of app j, a_w = per-way
    # elasticity) and compound rates carry no suffix unit.
    return p_j * r_j + a_w + sum_j * usd_per_kwh


def simulate(power_cap_w):
    return power_cap_w
