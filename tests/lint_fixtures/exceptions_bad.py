"""Fixture: exception-policy violations (POCO401 must flag each)."""


def validate(x):
    assert x > 0
    if x > 10:
        raise ValueError("too big")
    return x


def swallow(fn):
    try:
        return fn()
    except Exception:
        return None


def bare(fn):
    try:
        return fn()
    except:  # noqa: E722
        return None
