"""Regression fixture: the real batched pairwise kernel, plus one bug.

``pairwise``/``_np_mean_lanes`` below are copied from
``src/repro/engine/batched.py`` unchanged — POCO801 must stay silent on
the genuine kernel (its ``a[:, i]`` column reads and ``buf.T`` are
views, but nothing ever writes through them).  ``center_lanes`` plants
the aliasing bug the rule exists for: an in-place subtraction through a
slice view of the tick buffer, which silently rewrites the caller's
array.  Exactly one finding, on the planted line, proves the rule
separates the idiom from the bug.
"""

# pocolint: lane-module

import numpy as np


def _np_mean_lanes(buf: np.ndarray) -> np.ndarray:
    """Per-lane means of a ``(n_ticks, n)`` buffer, bit-identical to
    ``np.mean`` of each lane's tick column (copied from the engine)."""
    def pairwise(a: np.ndarray) -> np.ndarray:
        length = a.shape[1]
        if length < 8:
            res = np.zeros(a.shape[0])
            for i in range(length):
                res = res + a[:, i]
            return res
        if length <= 128:
            r = [a[:, j].astype(float) for j in range(8)]
            i = 8
            while i < length - (length % 8):
                for j in range(8):
                    r[j] = r[j] + a[:, i + j]
                i += 8
            res = ((r[0] + r[1]) + (r[2] + r[3])) + (
                (r[4] + r[5]) + (r[6] + r[7])
            )
            while i < length:
                res = res + a[:, i]
                i += 1
            return res
        half = a.shape[1] // 2
        half -= half % 8
        return pairwise(a[:, :half]) + pairwise(a[:, half:])

    lanes = buf.T
    return pairwise(lanes) / lanes.shape[1]


def center_lanes(n_ticks, n):
    """The planted bug: centering 'in place' through a slice view."""
    ticks = np.zeros((n_ticks, n))
    window = ticks[1:]
    window -= 0.5  # PLANTED BUG: mutates `ticks` through the view
    return _np_mean_lanes(ticks)
