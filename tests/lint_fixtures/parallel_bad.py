"""Fixture: unpicklable callables into pools (POCO301 must flag each)."""

from repro.engine.parallel import map_ordered


def run_all(tasks, pool):
    doubled = map_ordered(lambda t: t * 2, tasks)

    def cell(task):
        return task

    nested = map_ordered(cell, tasks)
    future = pool.submit(lambda: 1)
    return doubled, nested, future


class Sweeper:
    def run_cells(self, tasks, executor):
        return executor.map(self.one_cell, tasks)

    def one_cell(self, task):
        return task
