"""Sink module: every sink family receives a tainted value."""

import os
import random

import numpy as np

from taint_bad.sources import ordered_names, stamp


def log_sample(telemetry):
    tick = stamp()
    telemetry.record("tick", tick, 1.0)  # BAD: wall clock -> telemetry


def persist(run_id):
    salt = os.environ["POCOLO_SALT"]
    return Checkpoint({"run": run_id, "salt": salt})  # BAD: env -> checkpoint


def record_rows(ledger_path):
    rows = ordered_names()
    write_ledger(ledger_path, rows)  # BAD: set order -> ledger


def fan_out(worker):
    draw = np.random.default_rng()
    return map_ordered(worker, [draw])  # BAD: unseeded rng -> pickled args


class JitterController:
    def export_state(self):
        jitter = random.random()
        return {"jitter": jitter}  # BAD: global RNG -> checkpointed state
