"""Source module: nondeterminism is produced here, sunk elsewhere."""

import time


def stamp():
    now = time.time()
    return now


def ordered_names():
    collected = ()
    for name in {"a", "b", "c"}:
        collected = collected + (name,)
    return collected
