"""POCO901 bad fixture package: nondeterminism reaching sinks.

Each module plants one source kind (clock, env, unseeded RNG, set
order) and routes it — through locals, returns and a module boundary —
into a sink (telemetry, checkpoint, ledger, pickled worker args).
"""
