"""Lane kernel with every hazard family POCO801 must catch."""

# pocolint: lane-module

import numpy as np


def alias_via_slice(n):
    power = np.zeros(n)
    evens = power[::2]
    evens += 1.0  # BAD: in-place through a slice view
    return power


def alias_via_reshape(n):
    load = np.zeros(2 * n)
    grid = load.reshape(2, n)
    grid[0] = 5.0  # BAD: subscript store through a reshape view
    return load


def alias_via_out(n):
    freq = np.ones(n)
    flat = freq.ravel()
    np.add(freq, 1.0, out=flat)  # BAD: out= writes through a view
    return freq


def narrow_constructor(n):
    return np.zeros(n, dtype=np.float32)  # BAD: float32 lane state


def narrow_cast(values):
    buf = np.asarray(values)
    return buf.astype(np.float32)  # BAD: astype narrows to float32


def implicit_int_accumulation(n):
    counts = np.full(n, 0)
    counts += 0.5  # BAD: float accumulates into implicit int lanes
    return counts


def cross_lane_reduction(buf):
    cube = np.zeros((4, 4))
    return cube.mean(axis=0)  # BAD: axis= reduction bypasses the helper
