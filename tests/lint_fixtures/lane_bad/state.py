"""Lane state held on ``self`` — hazards through attribute arrays."""

# pocolint: lane-module

import numpy as np


class LaneState:
    def __init__(self, n):
        self.power = np.zeros(n)
        self.temps = np.zeros(n)

    def corrupt(self):
        tail = self.power[1:]
        tail += 2.0  # BAD: view of an attribute lane array
        return tail

    def transpose_write(self):
        flipped = self.temps.reshape(1, -1).T
        flipped[0] = 0.0  # BAD: store through a .T view chain
        return flipped
