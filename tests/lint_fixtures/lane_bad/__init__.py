"""POCO801 bad fixture package: lane-module numpy hazards."""
