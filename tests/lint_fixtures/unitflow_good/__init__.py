"""POCO701 good twin: the same call shapes with consistent units."""
