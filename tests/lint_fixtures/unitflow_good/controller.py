"""Caller module of the good twin: units line up across the boundary."""

from unitflow_good.convert import energy_j, idle_power_w, sink_power


def plan_budget(dt_s):
    raw = energy_j(40.0, dt_s)
    budget_j = raw  # joules into a joules name
    return budget_j


def drain_w():
    return idle_power_w()  # watts returned from a watts-suffixed function


def tick(limit_w):
    return sink_power(limit_w, 0.5)  # positional cap_w receives watts
