"""Callee module of the good twin."""


def energy_j(power_w, dt_s):
    return power_w * dt_s


def idle_power_w():
    return 12.5


def sink_power(cap_w, slack_frac):
    return cap_w * slack_frac
