"""Fixture: every call here is banned entropy (POCO201 must flag each)."""

import random
import time
from datetime import datetime

import numpy as np


def sample_everything():
    stamp = time.time()
    now = datetime.now()
    ambient = random.random()
    legacy = np.random.normal(0.0, 1.0)
    unseeded = np.random.default_rng()
    unseeded_bitgen = np.random.PCG64()
    unseeded_stdlib = random.Random()
    return stamp, now, ambient, legacy, unseeded, unseeded_bitgen, unseeded_stdlib
