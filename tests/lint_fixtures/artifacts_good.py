"""The same artifact flows done legally: atomic helpers and pure reads."""
import json
import pathlib

from repro.runtime.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)

atomic_write_json("BENCH_engine.json", {"a": 1})
atomic_write_text("report.md", "# table\n")
atomic_write_bytes("sweep.ckpt", b"payload")
content = pathlib.Path("artifact.json").read_text()
payload = json.loads(content)
with open("artifact.json") as handle:
    handle.read()
with open("artifact.json", "rb") as binary:
    binary.read()
stream = pathlib.Path("notes.csv").open(newline="")
