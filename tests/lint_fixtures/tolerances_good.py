"""POCO601 good twin: the same shapes, legally.

Unit-less quantities, strict threshold comparisons (no abs/isclose),
and the guard vocabulary itself are all fine.
"""
import math

from repro.guard import tolerance_band, within_tolerance


def legal(measured_w, cap_w, count_a, count_b, score, margin_w):
    a = within_tolerance(measured_w, cap_w, abs_tol_w=0.5)
    b = tolerance_band(cap_w, abs_tol=3.0, rel_tol=0.0)
    c = abs(count_a - count_b) < 2
    d = math.isclose(score, 1.0)
    e = measured_w < cap_w - margin_w
    f = measured_w > cap_w
    return a, b, c, d, e, f
