"""Fixture: explicitly seeded twin of determinism_bad (POCO201 silent)."""

import numpy as np


def sample(seed, sim_clock_s):
    rng = np.random.default_rng(seed)
    gen = np.random.Generator(np.random.PCG64(seed))
    draw = rng.normal(0.0, 1.0)
    other = gen.random()
    # Time comes from the simulation clock argument, never the host.
    return draw, other, sim_clock_s
