"""Fixture: violations silenced by inline suppression comments."""

import time


def stamp():
    return time.time()  # pocolint: disable=nondeterminism


def stamp_all():
    return time.time()  # pocolint: disable=all


def not_suppressed():
    # A suppression inside a string literal must not count:
    marker = "# pocolint: disable=nondeterminism"
    return time.time(), marker
