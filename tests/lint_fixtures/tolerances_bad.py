"""POCO601 bad fixture: hand-rolled tolerance checks on power/energy."""
import math

import numpy as np


def violations(measured_w, expected_w, energy_j, budget_j, tol, eps_w):
    a = abs(measured_w - expected_w) < tol
    b = tol >= abs(measured_w - expected_w)
    c = abs(energy_j - budget_j) <= 0.5
    d = abs(attributed_w) < eps_w
    e = math.isclose(measured_w, expected_w, abs_tol=0.25)
    f = np.isclose(energy_j, budget_j)
    g = np.allclose(residual_w, 0.0, atol=1e-6)
    return a, b, c, d, e, f, g
