"""Fixture: picklable twin of parallel_bad (POCO301 must stay silent)."""

from functools import partial

from repro.engine.parallel import map_ordered


def one_cell(task):
    return task


def run_all(tasks, pool, series):
    plain = map_ordered(one_cell, tasks)
    bound_args = map_ordered(partial(one_cell, 1), tasks)
    future = pool.submit(one_cell, 1)
    # `.map` on a non-pool receiver is out of scope for the rule.
    mapped = series.map(lambda v: v + 1)
    return plain, bound_args, future, mapped
