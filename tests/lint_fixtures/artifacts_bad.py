"""Every in-place artifact write POCO501 must catch (linted, not run)."""
import json
import pathlib

pathlib.Path("BENCH_engine.json").write_text(json.dumps({"a": 1}))
pathlib.Path("report.md").write_bytes(b"# table\n")
handle = open("artifact.json", "w")
appender = open("log.txt", mode="a")
exclusive = open("once.md", "x")
updating = pathlib.Path("notes.csv").open("r+")
