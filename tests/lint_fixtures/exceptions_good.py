"""Fixture: policy-clean twin of exceptions_bad (POCO401 silent)."""

from repro.errors import ConfigError, SimulationError


def validate(x):
    if x <= 0:
        raise ConfigError("x must be positive")
    if x > 10:
        raise SimulationError("x exceeded the simulated range")
    return x


def rewrap(fn):
    try:
        return fn()
    except ValueError as exc:
        raise SimulationError("fn rejected its input") from exc


def reraise(fn):
    try:
        return fn()
    except Exception:
        raise
