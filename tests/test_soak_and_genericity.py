"""Long-horizon soak and hardware-genericity tests.

The soak test (marked slow) runs a compressed multi-day workload —
weekly trace with a flash crowd — through the full POM + cap-loop stack
and checks nothing drifts: SLO held, power bounded, BE work still
flowing at the end.

The genericity tests re-run the pipeline on a *different* server SKU
(8 cores, 16 ways, slower ladder): nothing in the stack may assume the
Table I constants.
"""

import numpy as np
import pytest

from repro.apps import best_effort_apps, latency_critical_apps
from repro.core.fitting import fit_indirect_utility
from repro.core.placement import build_performance_matrix, pocolo_placement
from repro.core.placement import LcServerSide
from repro.core.profiler import (
    default_profiling_grid,
    profile_best_effort,
    profile_latency_critical,
)
from repro.core.server_manager import PowerOptimizedManager
from repro.core.utility import integer_min_power_allocation
from repro.hwmodel.spec import FrequencyLadder, ServerSpec
from repro.sim.colocation import ColocationSim, SimConfig, build_colocated_server
from repro.workloads.generators import FlashCrowdTrace, WeeklyTrace
from repro.workloads.traces import DiurnalTrace


class CompressedTrace:
    """Any trace replayed at one simulated second per real minute."""

    def __init__(self, base, factor=60.0):
        self._base = base
        self._factor = factor

    def load_fraction(self, time_s):
        return self._base.load_fraction(time_s * self._factor)


@pytest.mark.slow
class TestSoak:
    def test_three_compressed_days_under_pom(self, catalog):
        base = FlashCrowdTrace(
            base=WeeklyTrace(base=DiurnalTrace(min_fraction=0.1, max_fraction=0.85)),
            events=((30 * 3600.0, 2 * 3600.0, 0.9),),  # a flash crowd on day 2
            decay_s=1800.0,
        )
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["rnn"]
        server = build_colocated_server(
            catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(),
            be_app=be,
        )
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        sim = ColocationSim(
            server=server, lc_app=lc, trace=CompressedTrace(base),
            manager=manager, be_app=be, config=SimConfig(seed=5),
        )
        # 3 compressed days = 72 simulated minutes.
        result = sim.run(duration_s=72 * 60.0)
        assert result.slo_violation_fraction < 0.05
        assert result.telemetry.series("power_w").percentile(99) <= (
            server.provisioned_power_w + 5.0
        )
        # BE work still flows in the final compressed day.
        tput = result.telemetry.series("be_throughput_norm")
        last_day = [v for t, v in zip(tput.times, tput.values) if t > 48 * 60.0]
        assert max(last_day) > 0.1
        # The controller did not wedge: it kept reconfiguring all along.
        assert result.manager_stats.reconfigurations > 20


SMALL_SPEC = ServerSpec(
    cores=8,
    llc_ways=16,
    llc_mb=20.0,
    ladder=FrequencyLadder(min_ghz=1.0, max_ghz=2.0),
    idle_power_w=35.0,
    nameplate_power_w=95.0,
    name="small-sku",
)


class TestHardwareGenericity:
    """The whole pipeline on a non-Table-I server."""

    @pytest.fixture(scope="class")
    def small_world(self):
        lc_apps = latency_critical_apps(SMALL_SPEC)
        be_apps = best_effort_apps(SMALL_SPEC)
        return lc_apps, be_apps

    def test_apps_calibrate_to_the_new_spec(self, small_world):
        lc_apps, be_apps = small_world
        for app in lc_apps.values():
            full = SMALL_SPEC.full_allocation()
            assert app.capacity(full) == pytest.approx(app.peak_load)
        for app in be_apps.values():
            assert app.normalized_throughput(
                SMALL_SPEC.full_allocation()
            ) == pytest.approx(1.0)

    def test_fit_and_projection_on_small_sku(self, small_world):
        lc_apps, _ = small_world
        rng = np.random.default_rng(3)
        grid = default_profiling_grid(SMALL_SPEC)
        samples = profile_latency_critical(
            lc_apps["xapian"], grid, load_fraction=0.3, rng=rng
        )
        fit = fit_indirect_utility(samples)
        assert fit.r2_perf > 0.7
        target = 0.5 * fit.model.performance(
            (float(SMALL_SPEC.cores), float(SMALL_SPEC.llc_ways))
        )
        alloc = integer_min_power_allocation(fit.model, target, SMALL_SPEC)
        assert 1 <= alloc.cores <= SMALL_SPEC.cores
        assert 1 <= alloc.ways <= SMALL_SPEC.llc_ways

    def test_placement_pipeline_on_small_sku(self, small_world):
        lc_apps, be_apps = small_world
        rng = np.random.default_rng(4)
        grid = default_profiling_grid(SMALL_SPEC)
        lc_sides = []
        for name, app in lc_apps.items():
            fit = fit_indirect_utility(
                profile_latency_critical(app, grid, load_fraction=0.3, rng=rng)
            )
            lc_sides.append(LcServerSide(
                name=name, model=fit.model,
                provisioned_power_w=app.peak_server_power_w(),
                peak_load=app.peak_load,
            ))
        be_models = {
            name: fit_indirect_utility(profile_best_effort(app, grid, rng=rng)).model
            for name, app in be_apps.items()
        }
        matrix = build_performance_matrix(lc_sides, be_models, SMALL_SPEC)
        decision = pocolo_placement(matrix)
        assert len(set(decision.mapping.values())) == 4
        # The complementarity story survives the SKU change.
        assert decision.mapping["graph"] == "sphinx"

    def test_managed_colocation_on_small_sku(self, small_world):
        lc_apps, be_apps = small_world
        rng = np.random.default_rng(5)
        grid = default_profiling_grid(SMALL_SPEC)
        lc = lc_apps["xapian"]
        fit = fit_indirect_utility(
            profile_latency_critical(lc, grid, load_fraction=0.3, rng=rng)
        )
        from repro.workloads.traces import ConstantTrace

        server = build_colocated_server(
            SMALL_SPEC, lc, provisioned_power_w=lc.peak_server_power_w(),
            be_app=be_apps["rnn"],
        )
        manager = PowerOptimizedManager(server, model=fit.model)
        sim = ColocationSim(
            server=server, lc_app=lc, trace=ConstantTrace(0.4),
            manager=manager, be_app=be_apps["rnn"], config=SimConfig(seed=0),
        )
        result = sim.run(duration_s=20.0)
        assert result.slo_violation_fraction < 0.10
        assert result.avg_be_throughput_norm > 0.05
