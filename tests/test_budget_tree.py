"""Tests for repro.budget: tree, schedules, fairness, ladder, arbiter.

The property at the heart of the lease protocol — every deviation from
the fail-safe floor expires, so the arbiter never needs to be trusted —
is pinned twice: directly (grants revert to the floor after ``lease_s``
with no renewal) and via Hypothesis (zero budget-invariant violations
under arbitrary grant/loss/delay/expiry sequences).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.budget import (
    STAGE_EVICT,
    STAGE_NOMINAL,
    STAGE_SHED,
    STAGE_THROTTLE,
    BrownoutLadder,
    BrownoutState,
    BudgetArbiter,
    BudgetAuditor,
    BudgetConfig,
    CapSchedule,
    ServerDemand,
    build_tree,
    distribute,
    max_min_shares,
    throughput_shares,
)
from repro.errors import CheckpointError, ConfigError
from repro.faults.schedule import (
    FaultSchedule,
    GrantDelay,
    GrantLoss,
    RackBreakerTrip,
    RackPowerDerate,
)
from repro.guard.invariants import GuardConfig


class _App:
    def __init__(self, name):
        self.name = name


class _Plan:
    """Duck-typed stand-in for ServerPlan (build_tree only reads these)."""

    def __init__(self, name, floor_w):
        self.lc_app = _App(name)
        self.provisioned_power_w = floor_w


def _fleet(floors):
    return [_Plan(f"s{i}", w) for i, w in enumerate(floors)]


class TestCapSchedule:
    def test_constant(self):
        sched = CapSchedule.constant(150.0)
        assert sched.is_constant
        assert sched.cap_at(0.0) == 150.0
        assert sched.cap_at(1e9) == 150.0

    def test_lookup_between_breakpoints(self):
        sched = CapSchedule(times_s=(0.0, 5.0, 10.0), caps_w=(100.0, 80.0, 120.0))
        assert sched.cap_at(0.0) == 100.0
        assert sched.cap_at(4.999) == 100.0
        assert sched.cap_at(5.0) == 80.0
        assert sched.cap_at(9.0) == 80.0
        assert sched.cap_at(10.0) == 120.0

    def test_before_first_breakpoint_is_defensive(self):
        sched = CapSchedule(times_s=(2.0,), caps_w=(90.0,))
        assert sched.cap_at(-1.0) == 90.0

    def test_from_segments_merges_repeats(self):
        sched = CapSchedule.from_segments(
            [(0.0, 100.0), (2.0, 100.0), (4.0, 80.0), (6.0, 80.0), (8.0, 100.0)]
        )
        assert sched.times_s == (0.0, 4.0, 8.0)
        assert sched.caps_w == (100.0, 80.0, 100.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CapSchedule(times_s=(), caps_w=())
        with pytest.raises(ConfigError):
            CapSchedule(times_s=(0.0, 1.0), caps_w=(100.0,))
        with pytest.raises(ConfigError):
            CapSchedule(times_s=(0.0, 0.0), caps_w=(100.0, 90.0))
        with pytest.raises(ConfigError):
            CapSchedule(times_s=(0.0,), caps_w=(0.0,))
        with pytest.raises(ConfigError):
            CapSchedule.from_segments([])

    def test_hashable_and_value_equal(self):
        a = CapSchedule.from_segments([(0.0, 100.0), (5.0, 80.0)])
        b = CapSchedule(times_s=(0.0, 5.0), caps_w=(100.0, 80.0))
        assert a == b
        assert hash(a) == hash(b)


class TestBudgetTree:
    def test_auto_racking(self):
        tree = build_tree(_fleet([100.0, 120.0, 80.0]), rack_size=2,
                          rack_slack=0.10)
        assert [rack.name for rack in tree.racks] == ["rack0", "rack1"]
        assert [s.name for s in tree.racks[0].servers] == ["s0", "s1"]
        assert [s.name for s in tree.racks[1].servers] == ["s2"]
        assert tree.racks[0].capacity_w == pytest.approx(220.0 * 1.10)
        assert tree.capacity_w == pytest.approx((220.0 + 80.0) * 1.10)

    def test_lookups(self):
        tree = build_tree(_fleet([100.0, 120.0, 80.0]), 2, 0.0)
        assert tree.rack_of("s2").name == "rack1"
        assert tree.floor_of("s1") == 120.0
        with pytest.raises(ConfigError):
            tree.rack_of("nope")
        with pytest.raises(ConfigError):
            tree.floor_of("nope")

    def test_duplicate_leaves_rejected(self):
        plans = [_Plan("a", 100.0), _Plan("b", 100.0), _Plan("a", 90.0)]
        with pytest.raises(ConfigError):
            build_tree(plans, rack_size=2, rack_slack=0.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            build_tree(_fleet([100.0]), rack_size=0, rack_slack=0.0)
        with pytest.raises(ConfigError):
            build_tree(_fleet([100.0]), rack_size=1, rack_slack=-0.1)
        with pytest.raises(ConfigError):
            build_tree([], rack_size=1, rack_slack=0.0)


class TestFairness:
    def test_max_min_water_filling(self):
        # The small want is satisfied in full; its refund raises the rest.
        grants = max_min_shares(90.0, [10.0, 100.0, 100.0])
        assert grants[0] == 10.0
        assert grants[1] == pytest.approx(40.0)
        assert grants[2] == pytest.approx(40.0)

    def test_max_min_pool_exhausts_equally(self):
        grants = max_min_shares(60.0, [100.0, 100.0, 100.0])
        assert grants == pytest.approx([20.0, 20.0, 20.0])

    def test_max_min_surplus_pool(self):
        grants = max_min_shares(1000.0, [10.0, 20.0])
        assert grants == [10.0, 20.0]

    def test_throughput_serves_heaviest_first(self):
        grants = throughput_shares(50.0, [40.0, 40.0, 40.0], [1.0, 3.0, 2.0])
        assert grants == pytest.approx([0.0, 40.0, 10.0])

    def test_throughput_tie_breaks_by_index(self):
        grants = throughput_shares(40.0, [40.0, 40.0], [1.0, 1.0])
        assert grants == pytest.approx([40.0, 0.0])

    def test_throughput_weight_mismatch(self):
        with pytest.raises(ConfigError):
            throughput_shares(10.0, [1.0, 2.0], [1.0])

    def test_distribute_dispatch(self):
        assert distribute("max-min", 10.0, [20.0], [1.0]) == [10.0]
        assert distribute("throughput", 10.0, [20.0], [1.0]) == [10.0]
        with pytest.raises(ConfigError):
            distribute("nope", 10.0, [20.0], [1.0])

    @given(
        pool=st.floats(0.0, 500.0),
        wants=st.lists(st.floats(0.0, 200.0), min_size=1, max_size=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_max_min_invariants(self, pool, wants):
        grants = max_min_shares(pool, wants)
        assert sum(grants) <= pool + 1e-6
        for grant, want in zip(grants, wants):
            assert 0.0 <= grant <= want + 1e-6
        # Max-min fairness: every unsatisfied server holds an equal share.
        unsatisfied = [
            grant for grant, want in zip(grants, wants)
            if grant < want - 1e-6
        ]
        if len(unsatisfied) > 1:
            assert max(unsatisfied) - min(unsatisfied) < 1e-6


class TestBrownoutLadder:
    def _ladder(self, hold=2):
        return BrownoutLadder((1.0, 0.85, 0.70), exit_margin=0.05,
                              hold_ticks=hold)

    def test_target_stages(self):
        ladder = self._ladder()
        assert ladder.target_stage(1.2) == STAGE_NOMINAL
        assert ladder.target_stage(0.95) == STAGE_THROTTLE
        assert ladder.target_stage(0.80) == STAGE_EVICT
        assert ladder.target_stage(0.50) == STAGE_SHED

    def test_entry_edge_counted_once(self):
        ladder = self._ladder()
        state = BrownoutState()
        assert ladder.step(state, 0.5) is True  # nominal -> shed
        assert state.stage == STAGE_SHED
        assert ladder.step(state, 0.5) is False  # already in brownout

    def test_hysteresis_holds_before_exit(self):
        ladder = self._ladder(hold=2)
        state = BrownoutState()
        ladder.step(state, 0.95)
        assert state.stage == STAGE_THROTTLE
        # Exit needs ratio >= 1.0 * 1.05 for 2 consecutive ticks.
        ladder.step(state, 1.06)
        assert state.stage == STAGE_THROTTLE
        ladder.step(state, 1.02)  # blip below the exit band: streak resets
        assert state.stage == STAGE_THROTTLE
        ladder.step(state, 1.06)
        ladder.step(state, 1.06)
        assert state.stage == STAGE_NOMINAL

    def test_validation(self):
        with pytest.raises(ConfigError):
            BrownoutLadder((0.7, 0.85, 1.0), 0.05, 2)
        with pytest.raises(ConfigError):
            BrownoutLadder((1.0, 0.85, 0.7), -0.1, 2)
        with pytest.raises(ConfigError):
            BrownoutLadder((1.0, 0.85, 0.7), 0.05, 0)


class TestBudgetConfig:
    def test_lease_must_cover_period(self):
        with pytest.raises(ConfigError):
            BudgetConfig(arbiter_period_s=5.0, lease_s=4.0)

    def test_unknown_fairness(self):
        with pytest.raises(ConfigError):
            BudgetConfig(fairness="nope")

    def test_defaults_valid(self):
        config = BudgetConfig()
        assert config.lease_s >= config.arbiter_period_s


def _arbiter(floors=(100.0, 120.0), faults=None, guard=None, **overrides):
    config = BudgetConfig(
        arbiter_period_s=1.0, lease_s=2.0, rack_size=2, rack_slack=0.2,
        **overrides,
    )
    tree = build_tree(_fleet(floors), config.rack_size, config.rack_slack)
    auditor = BudgetAuditor(guard)
    return BudgetArbiter(tree, config, faults=faults, auditor=auditor), tree


def _hungry(tree):
    """Demands that want more than every floor (so grants move caps)."""
    return {
        server.name: ServerDemand(
            lc_w=server.floor_w * 0.5,
            be_w=server.floor_w,
            be_weight=1.0,
        )
        for server in tree.servers
    }


class TestBudgetArbiter:
    def test_floor_before_any_grant(self):
        arbiter, tree = _arbiter()
        assert arbiter.in_force_cap_w("s0", 0.0) == tree.floor_of("s0")

    def test_grants_lift_caps_then_expire_to_floor(self):
        arbiter, tree = _arbiter()
        issued = arbiter.tick(0.0, _hungry(tree))
        assert len(issued) == 2
        cap = arbiter.in_force_cap_w("s0", 0.5)
        assert cap > tree.floor_of("s0")
        # The lease protocol: no renewal, so the grant dies at lease_s.
        assert arbiter.in_force_cap_w("s0", 2.0) == tree.floor_of("s0")

    def test_latest_grant_governs(self):
        arbiter, tree = _arbiter()
        arbiter.tick(0.0, _hungry(tree))
        first = arbiter.in_force_cap_w("s0", 0.5)
        arbiter.tick(1.0, {})  # no demand: caps fall back toward floors
        second = arbiter.in_force_cap_w("s0", 1.5)
        assert second != first

    def test_grant_loss_keeps_floor(self):
        faults = FaultSchedule([
            GrantLoss(start_s=0.0, duration_s=10.0, lc_names=("s0",)),
        ])
        arbiter, tree = _arbiter(faults=faults)
        arbiter.tick(0.0, _hungry(tree))
        assert arbiter.in_force_cap_w("s0", 0.5) == tree.floor_of("s0")
        assert arbiter.in_force_cap_w("s1", 0.5) > tree.floor_of("s1")
        assert arbiter.stats.grants_lost == 1

    def test_grant_delay_shifts_effective_time(self):
        faults = FaultSchedule([
            GrantDelay(start_s=0.0, duration_s=10.0, delay_s=0.7),
        ])
        arbiter, tree = _arbiter(faults=faults)
        arbiter.tick(0.0, _hungry(tree))
        assert arbiter.in_force_cap_w("s0", 0.5) == tree.floor_of("s0")
        assert arbiter.in_force_cap_w("s0", 0.8) > tree.floor_of("s0")
        assert arbiter.stats.grants_delayed == 2

    def test_derate_drives_brownout_below_floor(self):
        faults = FaultSchedule([
            RackPowerDerate(start_s=0.0, duration_s=10.0, factor=0.5,
                            rack="rack0"),
        ])
        arbiter, tree = _arbiter(faults=faults)
        arbiter.tick(0.0, _hungry(tree))
        assert arbiter.stage_of("rack0") > STAGE_NOMINAL
        assert arbiter.in_force_cap_w("s0", 0.5) < tree.floor_of("s0")
        assert arbiter.stats.brownout_entries == 1

    def test_breaker_trip_hits_emergency_fraction(self):
        faults = FaultSchedule([
            RackBreakerTrip(start_s=0.0, duration_s=10.0, residual=0.0,
                            rack="rack0"),
        ])
        arbiter, tree = _arbiter(faults=faults)
        arbiter.tick(0.0, _hungry(tree))
        floor = tree.floor_of("s0")
        config = arbiter.config
        assert arbiter.in_force_cap_w("s0", 0.5) == pytest.approx(
            floor * config.min_cap_fraction
        )

    def test_state_round_trip(self):
        arbiter, tree = _arbiter()
        arbiter.tick(0.0, _hungry(tree))
        arbiter.tick(1.0, {})
        snapshot = arbiter.export_state()
        fresh, _ = _arbiter()
        fresh.import_state(snapshot)
        for t in (0.2, 1.2, 2.5, 3.5):
            for server in tree.servers:
                assert fresh.in_force_cap_w(server.name, t) == (
                    arbiter.in_force_cap_w(server.name, t)
                )
        assert fresh.export_state() == snapshot

    def test_import_rejects_foreign_snapshots(self):
        arbiter, _ = _arbiter()
        with pytest.raises(CheckpointError):
            arbiter.import_state({"controller": "PowerCapController"})
        snapshot = arbiter.export_state()
        snapshot["ledger"]["intruder"] = []
        with pytest.raises(CheckpointError):
            arbiter.import_state(snapshot)


@st.composite
def _fault_windows(draw):
    """A random mix of grant-loss/delay/derate/trip windows."""
    faults = []
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.integers(0, 3))
        start = draw(st.floats(0.0, 8.0))
        duration = draw(st.floats(0.5, 8.0))
        if kind == 0:
            faults.append(GrantLoss(start_s=start, duration_s=duration))
        elif kind == 1:
            faults.append(GrantDelay(
                start_s=start, duration_s=duration,
                delay_s=draw(st.floats(0.1, 5.0)),
            ))
        elif kind == 2:
            faults.append(RackPowerDerate(
                start_s=start, duration_s=duration,
                factor=draw(st.floats(0.1, 0.95)), rack="rack0",
            ))
        else:
            faults.append(RackBreakerTrip(
                start_s=start, duration_s=duration,
                residual=draw(st.floats(0.0, 0.5)), rack="rack0",
            ))
    return faults


class TestGrantConservationProperty:
    @given(
        faults=_fault_windows(),
        skip=st.lists(st.booleans(), min_size=10, max_size=10),
        hungry=st.lists(st.booleans(), min_size=10, max_size=10),
        oversubscription=st.sampled_from([0.0, 0.1]),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_violations_under_arbitrary_sequences(
        self, faults, skip, hungry, oversubscription
    ):
        """Grant conservation holds for any grant/loss/delay/expiry mix.

        Skipped ticks model arbiter crashes (grants expire un-renewed),
        ``hungry`` toggles demand spikes, and the fault windows inject
        message loss, delivery delay and capacity collapse — under all
        of it the record-mode audit must stay clean, and once the last
        lease runs out every server must sit back at its floor.
        """
        guard = GuardConfig(mode="record")
        arbiter, tree = _arbiter(
            floors=(90.0, 130.0, 110.0),
            faults=FaultSchedule(faults) if faults else None,
            guard=guard,
            oversubscription=oversubscription,
        )
        demands = _hungry(tree)
        last_tick_s = 0.0
        for index, (skipped, wants) in enumerate(zip(skip, hungry)):
            if skipped:
                continue  # the arbiter missed this period (crash window)
            time_s = index * arbiter.config.arbiter_period_s
            arbiter.tick(time_s, demands if wants else {})
            last_tick_s = time_s
        report = arbiter.auditor.report()
        assert report is not None
        assert report.total_violations == 0
        settle_s = last_tick_s + arbiter.config.lease_s
        for server in tree.servers:
            assert arbiter.in_force_cap_w(server.name, settle_s) == (
                tree.floor_of(server.name)
            )
