"""Property-based invariants of the batched structure-of-arrays core.

Hypothesis pins the algebra the batched engine must obey if its lanes
are truly independent reproductions of the per-object oracle:

* **permutation invariance** — shuffling the task list shuffles the
  results and changes nothing else (no cross-lane leakage);
* **batch of one is the scalar path** — a single-lane batch equals the
  oracle cell bit for bit;
* **concatenation is union** — running two clusters in one batch equals
  running them separately and concatenating;
* **state round-trip** — :meth:`BatchedClusterSim.export_state` /
  :meth:`import_state` taken at *any* tick resumes to a bit-identical
  result (the in-process analogue of the checkpoint codec).

All comparisons reuse :func:`assert_outcome_equal`, i.e. exact floats
down to every telemetry tick and guard violation.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.batched import (
    BatchedClusterSim,
    _partition,
    run_batched_cells,
)
from repro.evaluation.pipeline import (
    ServerPlan,
    cluster_plans,
    fit_catalog,
    placement_for_policy,
)
from repro.guard.invariants import GuardConfig
from repro.sim.cluster import _run_cell
from repro.sim.colocation import SimConfig

from tests.test_batched_differential import (
    RandomHeraclesFactory,
    assert_outcome_equal,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

_CACHE = {}


def _fixture():
    """Task pool + baseline batched results, built once per process."""
    if "tasks" not in _CACHE:
        catalog = fit_catalog(seed=7)
        pom = cluster_plans(
            catalog, placement_for_policy(catalog, "pocolo"), "pocolo"
        )
        her = cluster_plans(
            catalog, placement_for_policy(catalog, "random"), "random"
        )
        plans = list(pom[:2]) + list(her[:1])
        plans.append(ServerPlan(
            lc_app=pom[0].lc_app, be_app=pom[0].be_app,
            provisioned_power_w=pom[0].provisioned_power_w,
            manager_factory=RandomHeraclesFactory(),
        ))
        plans.append(ServerPlan(
            lc_app=pom[1].lc_app, be_app=None,
            provisioned_power_w=pom[1].provisioned_power_w,
            manager_factory=pom[1].manager_factory,
        ))
        config = SimConfig(warmup_s=2.0, seed=4)
        guard = GuardConfig(deep_check_every=3)
        tasks = [
            (plan, catalog.spec, level, 5.0, config, plan.be_app, None, guard)
            for plan in plans
            for level in (0.0, 0.5, 0.9)
        ]
        _CACHE["tasks"] = tasks
        _CACHE["baseline"] = run_batched_cells(tasks)
    return _CACHE["tasks"], _CACHE["baseline"]


N_TASKS = 15  # len(plans) * len(levels); pinned so strategies can draw


def test_pool_size_matches_strategies():
    tasks, baseline = _fixture()
    assert len(tasks) == len(baseline) == N_TASKS


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(perm=st.permutations(range(N_TASKS)))
def test_server_permutation_invariance(perm):
    tasks, baseline = _fixture()
    shuffled = run_batched_cells([tasks[i] for i in perm])
    for out_pos, src in enumerate(perm):
        assert_outcome_equal(
            baseline[src], shuffled[out_pos], f"perm pos {out_pos}"
        )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(index=st.integers(min_value=0, max_value=N_TASKS - 1))
def test_batch_of_one_is_scalar_path(index):
    tasks, baseline = _fixture()
    solo = run_batched_cells([tasks[index]])
    assert len(solo) == 1
    # Equal to the same lane inside the full batch...
    assert_outcome_equal(baseline[index], solo[0], "vs-batch")
    # ...and to the per-object oracle outright.
    key = ("scalar", index)
    if key not in _CACHE:
        _CACHE[key] = _run_cell(*tasks[index])
    assert_outcome_equal(_CACHE[key], solo[0], "vs-oracle")


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(split=st.integers(min_value=0, max_value=N_TASKS))
def test_concat_of_clusters_is_union(split):
    tasks, baseline = _fixture()
    first, second = tasks[:split], tasks[split:]
    merged = (
        (run_batched_cells(first) if first else [])
        + (run_batched_cells(second) if second else [])
    )
    for a, b in zip(baseline, merged):
        assert_outcome_equal(a, b, f"split={split}")


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pause_after=st.integers(min_value=0, max_value=6))
def test_state_roundtrip_resumes_bit_identical(pause_after):
    """Export at tick k, import into a fresh sim, finish: same result."""
    tasks, _ = _fixture()
    groups, fallback, infos = _partition(tasks, {})
    assert not fallback
    positions = max(groups.values(), key=len)
    group_tasks = [tasks[i] for i in positions]
    group_infos = [infos[i] for i in positions]

    donor = BatchedClusterSim(group_tasks, group_infos)
    for _ in range(pause_after):
        donor.step()
    snapshot = donor.export_state()
    donor.run()
    expected = donor.collect()

    resumed = BatchedClusterSim(group_tasks, group_infos)
    resumed.import_state(snapshot)
    resumed.run()
    for a, b in zip(expected, resumed.collect()):
        assert_outcome_equal(a, b, f"pause={pause_after}")
