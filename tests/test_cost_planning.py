"""Tests for repro.cost.planning: right-sizing power capacity."""

import pytest

from repro.cost.planning import plan_power, servers_for_demand, stranded_power_profile
from repro.errors import ConfigError
from repro.workloads.traces import ConstantTrace, DiurnalTrace


class TestPlanPower:
    def test_provisioning_covers_every_sampled_draw(self, xapian):
        trace = DiurnalTrace(min_fraction=0.1, max_fraction=0.9)
        plan = plan_power(xapian, trace)
        assert plan.provisioned_power_w >= plan.mean_draw_w
        assert plan.peak_load_fraction == pytest.approx(0.9, abs=0.02)

    def test_constant_low_load_provisions_low(self, xapian):
        low = plan_power(xapian, ConstantTrace(0.1))
        high = plan_power(xapian, ConstantTrace(0.9))
        assert low.provisioned_power_w < high.provisioned_power_w

    def test_diurnal_strands_power(self, xapian):
        """The paper's premise: diurnal load strands provisioned watts."""
        plan = plan_power(xapian, DiurnalTrace(min_fraction=0.1, max_fraction=0.9))
        assert plan.stranded_fraction > 0.10
        assert plan.stranded_w > 10.0

    def test_constant_peak_strands_little(self, xapian):
        plan = plan_power(xapian, ConstantTrace(0.9), safety_margin=0.0)
        assert plan.stranded_fraction == pytest.approx(0.0, abs=0.01)

    def test_safety_margin_scales_capacity(self, xapian):
        base = plan_power(xapian, ConstantTrace(0.5), safety_margin=0.0)
        padded = plan_power(xapian, ConstantTrace(0.5), safety_margin=0.10)
        assert padded.provisioned_power_w == pytest.approx(
            base.provisioned_power_w * 1.10
        )

    def test_validation(self, xapian):
        with pytest.raises(ConfigError):
            plan_power(xapian, ConstantTrace(0.5), samples=1)
        with pytest.raises(ConfigError):
            plan_power(xapian, ConstantTrace(0.5), horizon_s=0.0)
        with pytest.raises(ConfigError):
            plan_power(xapian, ConstantTrace(0.5), safety_margin=-0.1)


class TestServersForDemand:
    def test_simple_division(self, xapian):
        # xapian peak 4000 rps; 75% target -> 3000 rps/server.
        assert servers_for_demand(xapian, 30_000.0) == 10

    def test_rounds_up(self, xapian):
        assert servers_for_demand(xapian, 30_001.0) == 11

    def test_at_least_one(self, xapian):
        assert servers_for_demand(xapian, 1.0) == 1

    def test_validation(self, xapian):
        with pytest.raises(ConfigError):
            servers_for_demand(xapian, 0.0)
        with pytest.raises(ConfigError):
            servers_for_demand(xapian, 100.0, target_utilization=0.0)


class TestStrandedProfile:
    def test_profile_nonnegative_and_diurnal(self, xapian):
        trace = DiurnalTrace(min_fraction=0.1, max_fraction=0.9)
        profile = stranded_power_profile(xapian, trace, samples=24)
        assert len(profile) == 24
        stranded = [w for _, w in profile]
        assert all(w >= 0.0 for w in stranded)
        # Off-peak strands much more than peak.
        assert max(stranded) > 3 * (min(stranded) + 1.0)

    def test_explicit_capacity_respected(self, xapian):
        profile = stranded_power_profile(
            xapian, ConstantTrace(0.5), provisioned_power_w=154.0, samples=4
        )
        for _, stranded in profile:
            assert stranded <= 154.0

    def test_validation(self, xapian):
        with pytest.raises(ConfigError):
            stranded_power_profile(xapian, ConstantTrace(0.5), samples=0)
