"""Tests for repro.faults: fault windows, schedules, and the faulty meter.

Every injector is exercised in isolation with deterministic (noiseless or
seeded) meters, so the expected corrupted readings are exact.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults import (
    Fault,
    FaultSchedule,
    FaultyPowerMeter,
    LoadSpike,
    MeterDrift,
    MeterDropout,
    MeterStuckAt,
    ModelStaleness,
    TelemetryGap,
)


class TestFaultWindows:
    def test_active_window_is_half_open(self):
        f = Fault(start_s=2.0, duration_s=3.0)
        assert not f.active(1.999)
        assert f.active(2.0)
        assert f.active(4.999)
        assert not f.active(5.0)
        assert f.ended(5.0)

    def test_permanent_fault_never_ends(self):
        f = Fault(start_s=1.0, duration_s=None)
        assert f.end_s == float("inf")
        assert f.active(1e9)
        assert not f.ended(1e9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Fault(start_s=-1.0)
        with pytest.raises(ConfigError):
            Fault(start_s=0.0, duration_s=0.0)
        with pytest.raises(ConfigError):
            MeterStuckAt(value_w=-5.0)
        with pytest.raises(ConfigError):
            LoadSpike(factor=0.0)
        with pytest.raises(ConfigError):
            ModelStaleness(start_s=0.0, duration_s=1.0)  # no model given


class TestFaultSchedule:
    def test_sorted_and_queryable(self):
        late = TelemetryGap(start_s=20.0, duration_s=5.0)
        early = MeterStuckAt(start_s=5.0, duration_s=5.0)
        sched = FaultSchedule([late, early])
        assert sched.faults == (early, late)
        assert len(sched) == 2
        assert sched.any_of(MeterStuckAt)
        assert not sched.any_of(LoadSpike)
        assert sched.active(7.0) == (early,)
        assert sched.active(7.0, TelemetryGap) == ()
        assert sched.first_active(22.0, TelemetryGap) is late
        assert sched.first_active(0.0, Fault) is None

    def test_describe_in_trigger_order(self):
        sched = FaultSchedule([
            TelemetryGap(start_s=8.0, duration_s=2.0),
            MeterDropout(start_s=1.0, duration_s=None),
        ])
        lines = sched.describe()
        assert lines[0].startswith("MeterDropout")
        assert "end" in lines[0]  # permanent window
        assert lines[1].startswith("TelemetryGap")

    def test_rejects_non_faults(self):
        with pytest.raises(ConfigError):
            FaultSchedule(["not a fault"])

    def test_random_is_seed_deterministic(self):
        a = FaultSchedule.random(seed=3, horizon_s=60.0)
        b = FaultSchedule.random(seed=3, horizon_s=60.0)
        assert a.faults == b.faults
        c = FaultSchedule.random(seed=4, horizon_s=60.0)
        assert a.faults != c.faults

    def test_random_respects_the_horizon(self):
        sched = FaultSchedule.random(seed=11, horizon_s=30.0, n_faults=8)
        assert len(sched) == 8
        for f in sched:
            assert f.start_s >= 0.0
            assert f.end_s <= 30.0

    def test_random_validation(self):
        with pytest.raises(ConfigError):
            FaultSchedule.random(seed=0, horizon_s=0.0)
        with pytest.raises(ConfigError):
            FaultSchedule.random(seed=0, horizon_s=10.0, n_faults=-1)


def noiseless_meter(source, schedule):
    return FaultyPowerMeter(
        source=source, schedule=schedule,
        rng=np.random.default_rng(0), noise_sigma_w=0.0, ewma_alpha=1.0,
    )


class TestFaultyMeterStuckAt:
    def test_freezes_at_last_prefault_reading(self):
        clock = {"v": 100.0}
        sched = FaultSchedule([MeterStuckAt(start_s=0.5, duration_s=0.5)])
        meter = noiseless_meter(lambda: clock["v"], sched)
        meter.sample(0.0)
        clock["v"] = 110.0
        before = meter.sample(0.4).watts
        assert before == 110.0
        clock["v"] = 130.0
        assert meter.sample(0.5).watts == 110.0  # frozen at the last reading
        clock["v"] = 150.0
        assert meter.sample(0.9).watts == 110.0
        assert meter.sample(1.0).watts == 150.0  # window closed: live again

    def test_pinned_value(self):
        sched = FaultSchedule([MeterStuckAt(start_s=0.0, duration_s=1.0, value_w=42.0)])
        meter = noiseless_meter(lambda: 100.0, sched)
        assert meter.sample(0.0).watts == 42.0
        assert meter.sample(0.5).watts == 42.0
        assert meter.sample(1.0).watts == 100.0

    def test_reset_clears_held_values(self):
        sched = FaultSchedule([MeterStuckAt(start_s=0.0, duration_s=None)])
        clock = {"v": 80.0}
        meter = noiseless_meter(lambda: clock["v"], sched)
        assert meter.sample(0.0).watts == 80.0
        meter.reset()
        clock["v"] = 90.0
        # A fresh episode freezes at the new first observation.
        assert meter.sample(0.0).watts == 90.0


class TestFaultyMeterDrift:
    def test_bias_ramp(self):
        drift = MeterDrift(start_s=1.0, duration_s=2.0, bias_w=5.0, rate_w_per_s=2.0)
        assert drift.bias_at(0.5) == 0.0
        assert drift.bias_at(1.0) == 5.0
        assert drift.bias_at(2.0) == 7.0
        assert drift.bias_at(3.0) == 0.0  # half-open window

    def test_applied_to_readings(self):
        sched = FaultSchedule([
            MeterDrift(start_s=1.0, duration_s=2.0, bias_w=5.0, rate_w_per_s=2.0)
        ])
        meter = noiseless_meter(lambda: 100.0, sched)
        assert meter.sample(0.0).watts == 100.0
        assert meter.sample(1.0).watts == 105.0
        assert meter.sample(2.0).watts == 107.0
        assert meter.sample(3.0).watts == 100.0

    def test_negative_drift_clipped_at_zero(self):
        sched = FaultSchedule([
            MeterDrift(start_s=0.0, duration_s=None, bias_w=-50.0, rate_w_per_s=0.0)
        ])
        meter = noiseless_meter(lambda: 1.0, sched)
        assert meter.sample(0.0).watts == 0.0


class TestFaultyMeterDropout:
    def test_reserves_last_reading_with_advancing_time(self):
        clock = {"v": 100.0}
        sched = FaultSchedule([MeterDropout(start_s=0.5, duration_s=1.0)])
        meter = noiseless_meter(lambda: clock["v"], sched)
        live = meter.sample(0.0)
        clock["v"] = 200.0
        stale = meter.sample(0.5)
        assert stale.watts == live.watts
        assert stale.filtered_watts == live.filtered_watts
        assert stale.time_s == 0.5  # timestamp still advances
        assert meter.sample(1.5).watts == 200.0

    def test_dropout_before_any_reading_falls_through(self):
        sched = FaultSchedule([MeterDropout(start_s=0.0, duration_s=None)])
        meter = noiseless_meter(lambda: 77.0, sched)
        # Nothing to re-serve yet: the first sample is a live one.
        assert meter.sample(0.0).watts == 77.0


class TestControlPlaneFaultsInSim:
    def test_load_spike_raises_true_load(self, catalog):
        from repro.core.server_manager import PowerOptimizedManager
        from repro.sim import ColocationSim, SimConfig, build_colocated_server
        from repro.workloads import ConstantTrace

        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["rnn"]
        server = build_colocated_server(
            catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(),
            be_app=be,
        )
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        sched = FaultSchedule([
            LoadSpike(start_s=10.0, duration_s=5.0, factor=1.5),
            TelemetryGap(start_s=16.0, duration_s=2.0),
        ])
        sim = ColocationSim(
            server=server, lc_app=lc, trace=ConstantTrace(0.4), manager=manager,
            be_app=be, config=SimConfig(seed=0, warmup_s=2.0), faults=sched,
        )
        result = sim.run(duration_s=20.0)
        series = result.telemetry.series("lc_load_fraction")
        in_spike = [v for t, v in zip(series.times, series.values) if 10.0 <= t < 15.0]
        outside = [v for t, v in zip(series.times, series.values) if t < 10.0]
        assert all(v == pytest.approx(0.6) for v in in_spike)
        assert all(v == pytest.approx(0.4) for v in outside)
