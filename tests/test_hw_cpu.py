"""Tests for repro.hwmodel.cpu: core pinning and DVFS control."""

import pytest

from repro.errors import AllocationError
from repro.hwmodel.cpu import CoreAllocator, DvfsController


@pytest.fixture()
def cores(spec):
    return CoreAllocator(spec)


@pytest.fixture()
def dvfs(spec):
    return DvfsController(spec)


class TestCoreAllocator:
    def test_starts_all_free(self, cores):
        assert cores.free_cores() == frozenset(range(12))
        assert cores.cores_of("lc") == frozenset()

    def test_assign_takes_lowest_free_ids(self, cores):
        got = cores.assign("lc", 3)
        assert got == frozenset({0, 1, 2})
        assert cores.owner(0) == "lc"
        assert cores.owner(3) is None

    def test_two_tenants_never_overlap(self, cores):
        lc = cores.assign("lc", 4)
        be = cores.assign("be", 5)
        assert not lc & be
        assert len(lc) == 4 and len(be) == 5

    def test_grow_keeps_existing_cores(self, cores):
        before = cores.assign("lc", 3)
        after = cores.assign("lc", 6)
        assert before <= after
        assert len(after) == 6

    def test_shrink_releases_highest_ids_first(self, cores):
        cores.assign("lc", 6)
        kept = cores.assign("lc", 2)
        assert kept == frozenset({0, 1})
        assert 5 in cores.free_cores()

    def test_grow_after_neighbor_takes_free_ids(self, cores):
        cores.assign("lc", 2)        # {0,1}
        cores.assign("be", 2)        # {2,3}
        grown = cores.assign("lc", 4)
        assert grown >= {0, 1}
        assert not grown & cores.cores_of("be")

    def test_oversubscription_rejected(self, cores):
        cores.assign("lc", 10)
        with pytest.raises(AllocationError):
            cores.assign("be", 3)

    def test_shrink_to_zero_removes_tenant(self, cores):
        cores.assign("lc", 3)
        assert cores.assign("lc", 0) == frozenset()
        assert cores.cores_of("lc") == frozenset()
        assert len(cores.free_cores()) == 12

    def test_release_frees_everything(self, cores):
        cores.assign("lc", 5)
        cores.release("lc")
        assert len(cores.free_cores()) == 12

    def test_release_unknown_tenant_is_noop(self, cores):
        cores.release("ghost")

    def test_negative_count_rejected(self, cores):
        with pytest.raises(AllocationError):
            cores.assign("lc", -1)

    def test_bad_core_id_rejected(self, cores):
        with pytest.raises(AllocationError):
            cores.owner(12)
        with pytest.raises(AllocationError):
            cores.owner(-1)


class TestDvfsController:
    def test_starts_at_max_frequency(self, dvfs, spec):
        for c in range(spec.cores):
            assert dvfs.frequency_of(c) == spec.max_freq_ghz

    def test_set_frequency_applies_to_group(self, dvfs):
        dvfs.set_frequency([0, 1, 2], 1.8)
        assert dvfs.frequency_of(0) == 1.8
        assert dvfs.frequency_of(3) == 2.2

    def test_off_ladder_frequency_rejected(self, dvfs):
        with pytest.raises(AllocationError):
            dvfs.set_frequency([0], 1.55)

    def test_throttle_steps_down_in_lockstep(self, dvfs):
        dvfs.set_frequency([0], 2.0)
        dvfs.set_frequency([1], 2.2)
        result = dvfs.throttle([0, 1])
        assert result == pytest.approx(1.9)  # min(2.0, 2.2) - 0.1
        assert dvfs.frequency_of(0) == pytest.approx(1.9)
        assert dvfs.frequency_of(1) == pytest.approx(1.9)

    def test_throttle_clamps_at_min(self, dvfs, spec):
        dvfs.set_frequency([0], spec.min_freq_ghz)
        assert dvfs.throttle([0]) == spec.min_freq_ghz

    def test_unthrottle_steps_up(self, dvfs):
        dvfs.set_frequency([0, 1], 1.5)
        assert dvfs.unthrottle([0, 1]) == pytest.approx(1.6)

    def test_throttle_empty_group(self, dvfs, spec):
        assert dvfs.throttle([]) == spec.min_freq_ghz
        assert dvfs.unthrottle([]) == spec.max_freq_ghz

    def test_group_frequency_is_minimum(self, dvfs):
        dvfs.set_frequency([0], 1.4)
        dvfs.set_frequency([1], 2.0)
        assert dvfs.group_frequency([0, 1]) == pytest.approx(1.4)

    def test_group_frequency_empty_is_max(self, dvfs, spec):
        assert dvfs.group_frequency([]) == spec.max_freq_ghz

    def test_snapshot_is_sorted_and_complete(self, dvfs, spec):
        snap = dvfs.snapshot()
        assert len(snap) == spec.cores
        assert [core for core, _ in snap] == list(range(spec.cores))

    def test_bad_core_id_rejected(self, dvfs):
        with pytest.raises(AllocationError):
            dvfs.frequency_of(99)
        with pytest.raises(AllocationError):
            dvfs.set_frequency([99], 2.0)
