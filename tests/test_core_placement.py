"""Tests for repro.core.placement: matrix building and placement policies."""

import numpy as np
import pytest

from repro.core.placement import (
    LcServerSide,
    assign_with_fallback,
    build_performance_matrix,
    enumerate_placements,
    pocolo_placement,
    predict_be_throughput,
    predict_spare_capacity,
    random_placement,
)
from repro.errors import ConfigError, SolverError
from repro.hwmodel.spec import Allocation
from repro.solvers.hungarian import brute_force_assignment_max


@pytest.fixture()
def servers(catalog):
    return catalog.lc_server_sides()


@pytest.fixture()
def be_models(catalog):
    return {name: fit.model for name, fit in catalog.be_fits.items()}


class TestSpareCapacityPrediction:
    def test_spare_plus_primary_cover_server(self, catalog, servers):
        spec = catalog.spec
        for lc in servers:
            spare, budget = predict_spare_capacity(lc, spec, level=0.3)
            assert 0 <= spare.cores < spec.cores
            assert 0 <= spare.ways < spec.llc_ways
            assert budget >= 0.0

    def test_spare_shrinks_with_level(self, catalog, servers):
        spec = catalog.spec
        lc = servers[0]
        lo_spare, lo_budget = predict_spare_capacity(lc, spec, level=0.1)
        hi_spare, hi_budget = predict_spare_capacity(lc, spec, level=0.9)
        assert hi_spare.cores + hi_spare.ways <= lo_spare.cores + lo_spare.ways
        assert hi_budget <= lo_budget + 1e-9

    def test_invalid_level_rejected(self, catalog, servers):
        with pytest.raises(ConfigError):
            predict_spare_capacity(servers[0], catalog.spec, level=0.0)
        with pytest.raises(ConfigError):
            predict_spare_capacity(servers[0], catalog.spec, level=1.2)

    def test_lc_server_side_validation(self, catalog):
        model = catalog.lc_fits["xapian"].model
        with pytest.raises(ConfigError):
            LcServerSide("x", model, provisioned_power_w=0.0, peak_load=100.0)
        with pytest.raises(ConfigError):
            LcServerSide("x", model, provisioned_power_w=100.0, peak_load=0.0)


class TestBeThroughputPrediction:
    def test_empty_spare_is_zero(self, catalog, be_models):
        assert predict_be_throughput(
            be_models["graph"], catalog.spec, Allocation.empty(), 50.0
        ) == 0.0

    def test_zero_budget_is_zero(self, catalog, be_models):
        spare = Allocation(cores=6, ways=10)
        assert predict_be_throughput(
            be_models["graph"], catalog.spec, spare, 0.0
        ) == 0.0

    def test_normalized_below_one(self, catalog, be_models):
        spare = Allocation(cores=11, ways=18)
        for model in be_models.values():
            pred = predict_be_throughput(model, catalog.spec, spare, 80.0)
            assert 0.0 <= pred <= 1.0

    def test_monotone_in_budget(self, catalog, be_models):
        spare = Allocation(cores=8, ways=14)
        lo = predict_be_throughput(be_models["graph"], catalog.spec, spare, 30.0)
        hi = predict_be_throughput(be_models["graph"], catalog.spec, spare, 90.0)
        assert hi >= lo


class TestPerformanceMatrix:
    def test_shape_and_labels(self, catalog, servers, be_models):
        matrix = build_performance_matrix(servers, be_models, catalog.spec)
        assert matrix.values.shape == (4, 4)
        assert matrix.be_names == tuple(be_models)
        assert matrix.lc_names == tuple(s.name for s in servers)

    def test_cells_are_probabilities(self, catalog, servers, be_models):
        matrix = build_performance_matrix(servers, be_models, catalog.spec)
        assert np.all(matrix.values >= 0.0)
        assert np.all(matrix.values <= 1.0)

    def test_cell_accessor(self, catalog, servers, be_models):
        matrix = build_performance_matrix(servers, be_models, catalog.spec)
        assert matrix.cell("graph", "sphinx") == pytest.approx(
            matrix.values[2, 1]
        )

    def test_empty_inputs_rejected(self, catalog, servers, be_models):
        with pytest.raises(ConfigError):
            build_performance_matrix([], be_models, catalog.spec)
        with pytest.raises(ConfigError):
            build_performance_matrix(servers, {}, catalog.spec)
        with pytest.raises(ConfigError):
            build_performance_matrix(servers, be_models, catalog.spec, levels=[])


class TestPocoloPlacement:
    def test_matches_paper_assignment(self, catalog):
        """Fig 14: Graph->sphinx, LSTM->img-dnn, RNN/Pbzip->xapian/tpcc."""
        decision = pocolo_placement(catalog.performance_matrix())
        assert decision.mapping["graph"] == "sphinx"
        assert decision.mapping["lstm"] == "img-dnn"
        assert {decision.mapping["rnn"], decision.mapping["pbzip"]} == {
            "xapian", "tpcc"
        }

    def test_lp_equals_brute_force(self, catalog):
        matrix = catalog.performance_matrix()
        decision = pocolo_placement(matrix, method="lp")
        _, brute_total = brute_force_assignment_max(matrix.values)
        assert decision.predicted_total == pytest.approx(brute_total, abs=1e-9)

    def test_methods_agree_on_optimum(self, catalog):
        matrix = catalog.performance_matrix()
        totals = {
            m: pocolo_placement(matrix, method=m).predicted_total
            for m in ("lp", "hungarian", "brute")
        }
        assert len({round(t, 9) for t in totals.values()}) == 1

    def test_is_a_perfect_matching(self, catalog):
        decision = pocolo_placement(catalog.performance_matrix())
        assert len(set(decision.mapping.values())) == len(decision.mapping)


class TestRandomPlacement:
    def test_valid_matching(self, rng):
        decision = random_placement(["a", "b"], ["x", "y", "z"], rng=rng)
        assert set(decision.mapping) == {"a", "b"}
        assert len(set(decision.mapping.values())) == 2

    def test_reproducible_by_seed(self):
        a = random_placement(["a", "b", "c"], ["x", "y", "z"],
                             rng=np.random.default_rng(4))
        b = random_placement(["a", "b", "c"], ["x", "y", "z"],
                             rng=np.random.default_rng(4))
        assert a.mapping == b.mapping

    def test_covers_all_placements_across_seeds(self):
        seen = set()
        for seed in range(200):
            d = random_placement(["a", "b"], ["x", "y"],
                                 rng=np.random.default_rng(seed))
            seen.add(tuple(sorted(d.mapping.items())))
        assert len(seen) == 2

    def test_more_be_than_lc_rejected(self, rng):
        with pytest.raises(ConfigError):
            random_placement(["a", "b"], ["x"], rng=rng)


class TestEnumeratePlacements:
    def test_counts_factorial(self):
        placements = enumerate_placements(["a", "b", "c"], ["x", "y", "z"])
        assert len(placements) == 6
        assert len({tuple(sorted(p.items())) for p in placements}) == 6

    def test_each_is_a_bijection(self):
        for p in enumerate_placements(["a", "b"], ["x", "y"]):
            assert len(set(p.values())) == 2

    def test_guards(self):
        with pytest.raises(ConfigError):
            enumerate_placements(["a"], ["x", "y"])
        with pytest.raises(ConfigError):
            enumerate_placements(list("abcdefghi"), list("123456789"))


class TestAssignWithFallback:
    def test_healthy_matrix_uses_the_requested_method(self):
        values = [[3.0, 1.0], [1.0, 3.0]]
        assignment, total, used, fallbacks = assign_with_fallback(values)
        assert assignment == [0, 1]
        assert total == pytest.approx(6.0)
        assert used == "lp"
        assert fallbacks == 0

    def test_nan_poisoned_matrix_degrades_to_greedy(self):
        values = np.full((2, 2), np.nan)
        assignment, total, used, fallbacks = assign_with_fallback(
            values, method="lp", retries=1
        )
        assert used == "greedy-fallback"
        assert fallbacks == 2  # the primary attempt plus its retry
        assert sorted(assignment) == [0, 1]
        assert total == 0.0  # failed predictions are worth nothing

    def test_unrecoverable_failure_chains_the_root_cause(self):
        # Both the primary solver and the greedy last resort fail on an
        # empty matrix; the raised error must carry the *primary*
        # failure as __cause__ so pooled ExecutionError messages (which
        # lose pickled cause chains) can still name it.
        with pytest.raises(SolverError) as excinfo:
            assign_with_fallback(np.zeros((0, 2)), method="lp", retries=1)
        assert "greedy fallback could not recover" in str(excinfo.value)
        cause = excinfo.value.__cause__
        assert isinstance(cause, SolverError)
        assert "non-empty" in str(cause)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            assign_with_fallback([[1.0]], retries=-1)
