"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import COMMANDS, main
from repro.errors import ConfigError


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS[1:]:
            assert name in out

    def test_placement(self, capsys):
        assert main(["placement"]) == 0
        out = capsys.readouterr().out
        assert "graph" in out and "sphinx" in out

    def test_preferences(self, capsys):
        assert main(["preferences"]) == 0
        out = capsys.readouterr().out
        assert "indirect" in out
        assert "sphinx" in out

    def test_fit(self, capsys):
        assert main(["fit"]) == 0
        out = capsys.readouterr().out
        assert "R2 perf" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "leontief*" in out
        assert "OK" in out

    def test_admission(self, capsys):
        assert main(["admission"]) == 0
        out = capsys.readouterr().out
        assert "Admission boundaries" in out
        assert "%" in out

    def test_seed_flag_changes_numbers(self, capsys):
        main(["fit", "--seed", "7"])
        first = capsys.readouterr().out
        main(["fit", "--seed", "8"])
        second = capsys.readouterr().out
        assert first != second

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    @pytest.mark.slow
    def test_motivation(self, capsys):
        assert main(["motivation"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out and "Fig 4" in out


class TestGuardCli:
    @pytest.mark.slow
    def test_guard_sweep_reports_checks(self, capsys):
        assert main(["guard", "--duration", "6"]) == 0
        out = capsys.readouterr().out
        assert "cells" in out
        assert "invariant checks" in out
        assert "record mode" in out

    @pytest.mark.slow
    def test_guard_enforce_writes_ledger(self, capsys, tmp_path):
        ledger = tmp_path / "violations.jsonl"
        assert main(["guard", "--guard-mode", "enforce", "--duration", "6",
                     "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "enforce mode" in out
        assert str(ledger) in out
        assert ledger.exists()

    @pytest.mark.slow
    def test_guard_campaign_reports_cases(self, capsys):
        assert main(["guard", "--campaign", "--rounds", "1",
                     "--duration", "8"]) == 0
        out = capsys.readouterr().out
        assert "cases run" in out
        assert "coverage points" in out

    def test_guard_campaign_rejects_enforce_mode(self):
        with pytest.raises(ConfigError, match="record"):
            main(["guard", "--campaign", "--guard-mode", "enforce"])


class TestBudgetCli:
    @pytest.mark.slow
    def test_run_with_budget_tree(self, capsys):
        assert main(["run", "--budget-tree", "--duration", "6",
                     "--arbiter-period", "2", "--lease", "4"]) == 0
        out = capsys.readouterr().out
        assert "Hierarchical budget tree" in out
        assert "Degradation under power budgets" in out
        assert "granted" in out

    def test_run_rejects_unknown_fairness(self):
        with pytest.raises(SystemExit):
            main(["run", "--budget-tree", "--fairness", "maximal"])
