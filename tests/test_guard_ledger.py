"""The violation ledger: format, error handling, and resume bit-identity.

The headline test is the crash drill `src/repro/guard/ledger.py` and
docs/RECOVERY.md both point at: a guarded, checkpointed sweep is
SIGKILLed mid-run — while cell fault windows are still ahead of it —
resumed from the surviving checkpoint, and its ledger file must be
**byte-identical** to the ledger of an uninterrupted run.  The ledger is
derived from completed cell outcomes (never streamed), and cells are
pure functions of their task tuples, so identity is exact, not
approximate.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.apps import REFERENCE_SPEC, best_effort_apps, latency_critical_apps
from repro.errors import ConfigError
from repro.evaluation.pipeline import HeraclesFactory
from repro.faults import ClusterFaultPlan, FaultSchedule, MeterStuckAt
from repro.guard import GuardConfig
from repro.guard.invariants import GuardReport, Violation
from repro.guard.ledger import (
    LEDGER_FORMAT,
    ledger_entries,
    read_ledger,
    render_ledger,
    write_ledger,
)
from repro.runtime import Checkpoint, run_cluster_checkpointed
from repro.sim import SimConfig, run_cluster
from repro.sim.cluster import ServerPlan

REPO_ROOT = Path(__file__).resolve().parents[1]

LEVELS = [0.3, 0.6]
DURATION_S = 30.0
CONFIG = SimConfig(seed=0, warmup_s=2.0)
#: A core floor no allocation can meet: every tick violates lc-slo-floor,
#: so the ledger is guaranteed non-empty and fully deterministic.
GUARD = GuardConfig(lc_min_cores=REFERENCE_SPEC.cores + 1)


def build_plans():
    """Two guarded servers; importable by the killed child process."""
    lcs = latency_critical_apps()
    bes = best_effort_apps()
    return [
        ServerPlan(
            lc_app=lcs[lc], be_app=bes[be],
            provisioned_power_w=lcs[lc].peak_server_power_w(),
            manager_factory=HeraclesFactory(),
        )
        for lc, be in [("xapian", "rnn"), ("sphinx", "graph")]
    ]


def build_fault_plan():
    """A per-cell fault window, so the kill lands mid-fault-window."""
    return ClusterFaultPlan(cell_faults=FaultSchedule([
        MeterStuckAt(start_s=5.0, duration_s=20.0)
    ]))


_CHILD = f"""\
import sys
sys.path.insert(0, {str(REPO_ROOT / "src")!r})
sys.path.insert(0, {str(REPO_ROOT / "tests")!r})
from test_guard_ledger import (
    CONFIG, DURATION_S, GUARD, LEVELS, build_fault_plan, build_plans,
)
from repro.apps import REFERENCE_SPEC
from repro.runtime import run_cluster_checkpointed

run_cluster_checkpointed(
    build_plans(), REFERENCE_SPEC, sys.argv[1], levels=LEVELS,
    duration_s=DURATION_S, config=CONFIG, fault_plan=build_fault_plan(),
    guard=GUARD, ledger_path=sys.argv[2], resume=True, checkpoint_every=1,
)
"""


def _kill_after_one_cell(ckpt: Path, timeout_s: float = 120.0) -> int:
    """SIGKILL the child sweep once its checkpoint shows one cell done."""
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(ckpt), str(ckpt) + ".jsonl"],
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + timeout_s
    try:
        while child.poll() is None and time.monotonic() < deadline:
            if ckpt.exists():
                done = Checkpoint.load(ckpt).extra.get("cells_done", 0)
                if done >= 1:
                    child.send_signal(signal.SIGKILL)
                    break
            time.sleep(0.01)
        child.wait(timeout=60)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=60)
    return child.returncode


class TestResumeBitIdentity:
    @pytest.mark.slow
    def test_killed_and_resumed_ledger_is_byte_identical(self, tmp_path):
        plans = build_plans()
        clean = run_cluster(
            plans, REFERENCE_SPEC, levels=LEVELS, duration_s=DURATION_S,
            config=CONFIG, fault_plan=build_fault_plan(), guard=GUARD,
        )
        reference = render_ledger(clean)
        assert reference, "the planted floor breach must populate the ledger"

        ckpt = tmp_path / "sweep.ckpt"
        returncode = _kill_after_one_cell(ckpt)
        assert returncode == -signal.SIGKILL, (
            "the child must die to our kill, not on its own"
        )
        assert ckpt.exists(), "no checkpoint survived the kill"
        extra = Checkpoint.load(ckpt).extra
        assert 1 <= extra["cells_done"] < extra["cells_total"], (
            "the kill must land mid-sweep for the drill to mean anything"
        )

        ledger_path = tmp_path / "violations.jsonl"
        resumed = run_cluster_checkpointed(
            plans, REFERENCE_SPEC, ckpt, levels=LEVELS,
            duration_s=DURATION_S, config=CONFIG,
            fault_plan=build_fault_plan(), guard=GUARD,
            ledger_path=ledger_path, resume=True,
        )
        assert ledger_path.read_text(encoding="utf-8") == reference
        assert render_ledger(resumed) == reference
        # And the parsed entries agree with the in-memory reports.
        entries = read_ledger(ledger_path)
        assert len(entries) == sum(
            len(o.result.guard_report.violations) for o in clean.outcomes
        )


def _fake_result(reports, lc="xapian", be="rnn"):
    outcomes = [
        SimpleNamespace(
            lc_name=lc, be_name=be, level=0.1 * (i + 1),
            result=SimpleNamespace(guard_report=report),
        )
        for i, report in enumerate(reports)
    ]
    return SimpleNamespace(outcomes=outcomes)


def _report(*violations, mode="record"):
    return GuardReport(
        mode=mode, checks=60, total_violations=len(violations),
        violations=tuple(violations),
    )


VIOLATION = Violation(
    invariant="power-cap", time_s=3.2,
    message="true draw above the provisioned cap envelope",
    observed=161.25, limit=157.0,
)


class TestLedgerFormat:
    def test_entries_ordered_by_cell_then_time(self):
        second = Violation("monotonic-time", 7.0, "clock stalled", 1.0, 1.0)
        result = _fake_result([
            _report(VIOLATION, second),
            _report(VIOLATION),
        ])
        entries = ledger_entries(result)
        assert [(e["cell"], e["invariant"]) for e in entries] == [
            (0, "power-cap"), (0, "monotonic-time"), (1, "power-cap"),
        ]
        assert all(e["format"] == LEDGER_FORMAT for e in entries)

    def test_unguarded_cells_are_skipped(self):
        result = _fake_result([None, _report(VIOLATION)])
        entries = ledger_entries(result)
        assert len(entries) == 1
        assert entries[0]["cell"] == 1

    def test_write_read_round_trip(self, tmp_path):
        result = _fake_result([_report(VIOLATION)])
        path = tmp_path / "ledger.jsonl"
        assert write_ledger(path, result) == 1
        entries = read_ledger(path)
        assert entries == ledger_entries(result)
        # repr-faithful floats survive the trip exactly.
        assert entries[0]["observed"] == 161.25

    def test_empty_ledger_is_still_written(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        assert write_ledger(path, _fake_result([_report()])) == 0
        assert path.exists() and path.read_bytes() == b""
        assert read_ledger(path) == []


class TestLedgerErrors:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no violation ledger"):
            read_ledger(tmp_path / "absent.jsonl")

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"format": "' + LEDGER_FORMAT + '"}\n{oops\n')
        with pytest.raises(ConfigError, match="not valid JSON"):
            read_ledger(path)

    def test_unknown_format_tag_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"format": "pocolo-guard-ledger/99"}) + "\n")
        with pytest.raises(ConfigError, match="unknown ledger format"):
            read_ledger(path)

    def test_ledger_without_guard_config_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="needs a guard config"):
            run_cluster_checkpointed(
                build_plans()[:1], REFERENCE_SPEC,
                tmp_path / "sweep.ckpt", levels=[0.3], duration_s=4.0,
                config=CONFIG, ledger_path=tmp_path / "ledger.jsonl",
            )
