"""CLI, exit-code and baseline-workflow tests for ``python -m repro.lint``.

Covers the acceptance contract: text and json formats, exit codes
(0 clean / 1 findings / 2 error), the baseline grandfather-and-ratchet
workflow, and the canary — seeding a deliberate ``time.time()`` into a
copy of ``engine/parallel.py`` must make the CLI fail.
"""

import json
import pathlib
import shutil
import subprocess
import sys

from repro.lint import Baseline, lint_paths
from repro.lint.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def run_cli(*argv):
    """Run the CLI in-process; returns (exit_code)."""
    return main(list(argv))


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        code = run_cli(str(FIXTURES / "units_good.py"), "--no-baseline")
        assert code == 0
        assert "pocolint: clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = run_cli(str(FIXTURES / "units_bad.py"), "--no-baseline")
        assert code == 1
        out = capsys.readouterr().out
        assert "POCO101[unit-mixing]" in out
        assert "6 new findings" in out

    def test_missing_path_exits_two(self, capsys):
        code = run_cli("tests/lint_fixtures/nonexistent.py", "--no-baseline")
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        code = run_cli(
            str(FIXTURES / "units_good.py"), "--baseline", str(bad)
        )
        assert code == 2


class TestFormats:
    def test_text_format_lines_are_parseable(self, capsys):
        run_cli(str(FIXTURES / "exceptions_bad.py"), "--no-baseline")
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if "POCO401" in line
        ]
        assert len(lines) == 4
        path, line_no, col, rest = lines[0].split(":", 3)
        assert path.endswith("exceptions_bad.py")
        assert int(line_no) == 5
        assert rest.strip().startswith("POCO401[exception-policy]")

    def test_json_format_is_machine_readable(self, capsys):
        code = run_cli(
            str(FIXTURES / "determinism_bad.py"),
            "--no-baseline",
            "--format=json",
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "pocolint"
        assert doc["clean"] is False
        assert doc["counts"] == {"nondeterminism": 7}
        first = doc["new_findings"][0]
        assert set(first) == {"rule", "code", "path", "line", "col", "message"}

    def test_json_clean_document(self, capsys):
        code = run_cli(
            str(FIXTURES / "units_good.py"), "--no-baseline", "--format=json"
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True and doc["new_findings"] == []

    def test_rule_selection(self, capsys):
        # exceptions_bad also trips no other family, so selecting only
        # unit-mixing must come back clean.
        code = run_cli(
            str(FIXTURES / "exceptions_bad.py"),
            "--no-baseline",
            "--rules=unit-mixing",
        )
        assert code == 0


#: Minimal structural subset of the SARIF 2.1.0 schema: enough to prove
#: the emitted document has the shape code-scanning backends require
#: (validated offline; the full OASIS schema needs network access).
SARIF_MIN_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "required": [
                                                            "startLine"
                                                        ],
                                                        "properties": {
                                                            "startLine": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    }
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarifFormat:
    def test_sarif_document_validates_against_schema(self, capsys):
        jsonschema = __import__("jsonschema")
        code = run_cli(
            str(FIXTURES / "units_bad.py"), "--no-baseline", "--format=sarif"
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        jsonschema.validate(doc, SARIF_MIN_SCHEMA)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "pocolint"
        # the full nine-family catalogue rides along
        assert len(run["tool"]["driver"]["rules"]) == 9
        assert len(run["results"]) == 6
        first = run["results"][0]
        assert first["ruleId"] == "POCO101"
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5
        assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_clean_run_has_empty_results(self, capsys):
        code = run_cli(
            str(FIXTURES / "units_good.py"), "--no-baseline", "--format=sarif"
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []


class TestGithubFormat:
    def test_error_annotations_emitted(self, capsys):
        code = run_cli(
            str(FIXTURES / "units_bad.py"), "--no-baseline", "--format=github"
        )
        assert code == 1
        out = capsys.readouterr().out
        annotations = [
            line for line in out.splitlines() if line.startswith("::error ")
        ]
        assert len(annotations) == 6
        assert "file=" in annotations[0]
        assert "line=5" in annotations[0]
        assert "title=POCO101[unit-mixing]" in annotations[0]
        assert "pocolint: 6 new findings" in out

    def test_clean_run_emits_no_annotations(self, capsys):
        code = run_cli(
            str(FIXTURES / "units_good.py"), "--no-baseline", "--format=github"
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "pocolint: clean" in out


def _git(tmp, *argv):
    proc = subprocess.run(
        ["git", "-C", str(tmp), "-c", "user.email=t@t", "-c", "user.name=t"]
        + list(argv),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestChangedOnly:
    def _make_repo(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "source.py").write_text(
            "import time\n\n\ndef stamp():\n"
            "    now = time.time()\n    return now\n"
        )
        (pkg / "sink.py").write_text(
            "from pkg.source import stamp\n\n\ndef log(telemetry):\n"
            "    telemetry.record('t', 0.0, 1.0)\n"
        )
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-qm", "seed")
        return pkg

    def test_cross_module_finding_with_cached_context(
        self, tmp_path, monkeypatch, capsys
    ):
        pkg = self._make_repo(tmp_path)
        # Introduce the bug in the sink module only: the clock taint
        # lives in (unchanged) source.py, so catching it proves the
        # changed-only run kept whole-program context.
        (pkg / "sink.py").write_text(
            "from pkg.source import stamp\n\n\ndef log(telemetry):\n"
            "    tick = stamp()\n"
            "    telemetry.record('t', tick, 1.0)\n"
        )
        monkeypatch.chdir(tmp_path)
        code = run_cli("pkg", "--changed-only", "--no-baseline")
        out = capsys.readouterr().out
        assert code == 1
        assert "POCO901[determinism-taint]" in out
        assert "time.time() (pkg/source.py:5)" in out
        # only the changed file reports; unchanged files are context
        assert "pkg/source.py:5:" not in out.replace(
            "(pkg/source.py:5)", ""
        )
        cache = tmp_path / ".pocolint-cache.json"
        assert cache.is_file()

        # Second run restores source.py from the cache (hash unchanged)
        # and must reproduce the identical interprocedural finding.
        capsys.readouterr()
        code = run_cli("pkg", "--changed-only", "--no-baseline")
        out = capsys.readouterr().out
        assert code == 1
        assert "time.time() (pkg/source.py:5)" in out
        doc = json.loads(cache.read_text())
        entry = doc["files"]["pkg/source.py"]
        assert entry["taint"]["pkg.source.stamp"]["return_sources"]

    def test_clean_tree_lints_nothing(self, tmp_path, monkeypatch, capsys):
        self._make_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = run_cli("pkg", "--changed-only", "--no-baseline")
        assert code == 0
        assert "pocolint: clean" in capsys.readouterr().out

    def test_stale_cache_entry_degrades_to_cold_parse(
        self, tmp_path, monkeypatch, capsys
    ):
        pkg = self._make_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        run_cli("pkg", "--changed-only", "--no-baseline")
        capsys.readouterr()
        cache = tmp_path / ".pocolint-cache.json"
        doc = json.loads(cache.read_text())
        doc["files"]["pkg/source.py"]["hash"] = "0" * 64  # poison
        cache.write_text(json.dumps(doc))
        (pkg / "sink.py").write_text(
            "from pkg.source import stamp\n\n\ndef log(telemetry):\n"
            "    telemetry.record('t', stamp(), 1.0)\n"
        )
        code = run_cli("pkg", "--changed-only", "--no-baseline")
        out = capsys.readouterr().out
        assert code == 1  # mismatched hash -> re-parsed, finding intact
        assert "time.time() (pkg/source.py:5)" in out

    def test_outside_git_repo_is_an_error(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "no-such-gitdir"))
        code = run_cli("m.py", "--changed-only", "--no-baseline")
        assert code == 2
        assert "changed-only" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_filter_roundtrip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        bad = FIXTURES / "determinism_bad.py"
        assert run_cli(str(bad), "--write-baseline", "--baseline", str(baseline)) == 0
        capsys.readouterr()
        # Same findings again: all grandfathered, exit 0.
        code = run_cli(str(bad), "--baseline", str(baseline))
        assert code == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_new_violation_not_absorbed(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        bad = FIXTURES / "determinism_bad.py"
        run_cli(str(bad), "--write-baseline", "--baseline", str(baseline))
        grown = tmp_path / "grown.py"
        grown.write_text(
            bad.read_text() + "\n\ndef more():\n    return time.time()\n"
        )
        capsys.readouterr()
        code = run_cli(str(grown), "--baseline", str(baseline))
        assert code == 1
        out = capsys.readouterr().out
        # Only the freshly added wall-clock read is new; the original
        # seven stay absorbed (keys are path-sensitive, so the copy is
        # *not* automatically absorbed — assert the count grew by one
        # relative to the copy's own findings).
        assert "new finding" in out

    def test_baseline_counts_per_rule(self, tmp_path):
        findings = lint_paths([FIXTURES / "exceptions_bad.py"])
        baseline = Baseline.from_findings(findings)
        assert baseline.counts_per_rule() == {"exception-policy": 4}
        path = tmp_path / "b.json"
        baseline.save(path)
        assert Baseline.load(path).counts_per_rule() == {"exception-policy": 4}

    def test_line_churn_does_not_unbaseline(self, tmp_path):
        """Baseline keys ignore line numbers, so moving code keeps it absorbed."""
        original = tmp_path / "mod.py"
        original.write_text("import time\n\nt = time.time()\n")
        baseline = Baseline.from_findings(lint_paths([original]))
        shifted = "import time\n\n\n\n# comment pushing things down\nt = time.time()\n"
        original.write_text(shifted)
        new, old = baseline.filter(lint_paths([original]))
        assert new == [] and len(old) == 1


class TestDeliberateViolationCanary:
    """Acceptance: seeding time.time() into engine/parallel.py must fail."""

    def test_engine_parallel_copy_with_wallclock_fails(self, tmp_path):
        target = tmp_path / "parallel.py"
        shutil.copy(SRC / "repro" / "engine" / "parallel.py", target)
        source = target.read_text()
        source = source.replace(
            "def map_ordered(",
            "import time\n\n\ndef _stamp():\n    return time.time()\n\n\ndef map_ordered(",
            1,  # the module-level function only, not SupervisedPool's method
        )
        target.write_text(source)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(target), "--no-baseline"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 1, proc.stderr
        assert "time.time() is a wall-clock read" in proc.stdout

    def test_pristine_engine_parallel_is_clean(self):
        assert lint_paths([SRC / "repro" / "engine" / "parallel.py"]) == []


class TestWholeTreeGate:
    def test_src_repro_clean_modulo_committed_baseline(self):
        findings = lint_paths([SRC / "repro"], root=REPO_ROOT)
        baseline_path = REPO_ROOT / "lint-baseline.json"
        new, _ = Baseline.load(baseline_path).filter(findings)
        assert new == [], "\n".join(f.render() for f in new)

    def test_module_entrypoint_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0
        assert "POCO101" in proc.stdout
