"""Tests for repro.core.spatial: spatial sharing of spare resources."""

import itertools

import pytest

from repro.core.spatial import (
    SpatialShare,
    exhaustive_partition,
    partition_spare,
)
from repro.errors import CapacityError, ConfigError
from repro.hwmodel.spec import Allocation


@pytest.fixture()
def be_models(catalog):
    return {name: fit.model for name, fit in catalog.be_fits.items()}


class TestSingleTenant:
    def test_takes_best_affordable_allocation(self, catalog, be_models):
        share = partition_spare(
            {"graph": be_models["graph"]}, Allocation(8, 12), 60.0, catalog.spec
        )
        alloc = share.allocation_of("graph")
        assert not alloc.is_empty
        assert share.power_used_w <= 60.0 + 1e-9
        assert alloc.cores <= 8 and alloc.ways <= 12

    def test_shut_out_when_budget_too_small(self, catalog, be_models):
        share = partition_spare(
            {"graph": be_models["graph"]}, Allocation(8, 12), 1.0, catalog.spec
        )
        assert share.allocation_of("graph").is_empty
        assert share.predicted_total == 0.0

    def test_empty_spare(self, catalog, be_models):
        share = partition_spare(
            {"graph": be_models["graph"]}, Allocation.empty(), 60.0, catalog.spec
        )
        assert share.predicted_total == 0.0
        assert share.active_tenants() == ()


class TestTwoTenantExactness:
    @pytest.mark.parametrize("pair", list(itertools.combinations(
        ["lstm", "rnn", "graph", "pbzip"], 2)))
    def test_matches_exhaustive(self, catalog, be_models, pair):
        models = {name: be_models[name] for name in pair}
        spare = Allocation(9, 14)
        solved = partition_spare(models, spare, 65.0, catalog.spec)
        oracle = exhaustive_partition(models, spare, 65.0, catalog.spec)
        assert solved.predicted_total == pytest.approx(
            oracle.predicted_total, abs=1e-9
        )

    def test_respects_resource_and_power_limits(self, catalog, be_models):
        models = {n: be_models[n] for n in ("graph", "lstm")}
        spare = Allocation(6, 10)
        share = partition_spare(models, spare, 45.0, catalog.spec)
        total_c = sum(a.cores for a in share.allocations.values())
        total_w = sum(a.ways for a in share.allocations.values())
        assert total_c <= spare.cores
        assert total_w <= spare.ways
        assert share.power_used_w <= 45.0 + 1e-9

    def test_complementary_pair_both_served(self, catalog, be_models):
        """graph (cores) + lstm (ways) should comfortably coexist."""
        models = {n: be_models[n] for n in ("graph", "lstm")}
        share = partition_spare(models, Allocation(10, 16), 80.0, catalog.spec)
        assert set(share.active_tenants()) == {"graph", "lstm"}
        graph_alloc = share.allocation_of("graph")
        lstm_alloc = share.allocation_of("lstm")
        # Each gets more of what it prefers.
        assert graph_alloc.cores > lstm_alloc.cores
        assert lstm_alloc.ways > graph_alloc.ways

    def test_tight_budget_shuts_out_hungry_tenant(self, catalog, be_models):
        models = {n: be_models[n] for n in ("graph", "lstm")}
        share = partition_spare(models, Allocation(10, 16), 14.0, catalog.spec)
        # graph's cheapest seed costs more than lstm's; with ~14 W only a
        # subset fits, and the optimizer should still produce something.
        assert share.predicted_total > 0.0
        assert share.power_used_w <= 14.0 + 1e-9


class TestThreePlusTenants:
    def test_three_way_partition_valid(self, catalog, be_models):
        models = {n: be_models[n] for n in ("graph", "lstm", "rnn")}
        spare = Allocation(9, 14)
        share = partition_spare(models, spare, 80.0, catalog.spec)
        assert share.predicted_total > 0.0
        total_c = sum(a.cores for a in share.allocations.values())
        total_w = sum(a.ways for a in share.allocations.values())
        assert total_c <= spare.cores and total_w <= spare.ways
        assert share.power_used_w <= 80.0 + 1e-9

    def test_three_way_beats_best_solo(self, catalog, be_models):
        """Sharing must never be worse than giving everything to one app."""
        models = {n: be_models[n] for n in ("graph", "lstm", "rnn")}
        spare = Allocation(9, 14)
        budget = 80.0
        share = partition_spare(models, spare, budget, catalog.spec)
        for name in models:
            solo = partition_spare({name: models[name]}, spare, budget, catalog.spec)
            assert share.predicted_total >= solo.predicted_total - 1e-9

    def test_too_many_tenants_for_spare(self, catalog, be_models):
        models = {n: be_models[n] for n in ("graph", "lstm", "rnn", "pbzip")}
        with pytest.raises(CapacityError):
            partition_spare(models, Allocation(3, 8), 80.0, catalog.spec)


class TestValidation:
    def test_no_models_rejected(self, catalog):
        with pytest.raises(ConfigError):
            partition_spare({}, Allocation(4, 4), 50.0, catalog.spec)

    def test_negative_budget_rejected(self, catalog, be_models):
        with pytest.raises(ConfigError):
            partition_spare({"graph": be_models["graph"]}, Allocation(4, 4),
                            -1.0, catalog.spec)

    def test_exhaustive_requires_two(self, catalog, be_models):
        with pytest.raises(ConfigError):
            exhaustive_partition({"graph": be_models["graph"]},
                                 Allocation(4, 4), 50.0, catalog.spec)

    def test_share_accessors(self, catalog, be_models):
        share = partition_spare(
            {n: be_models[n] for n in ("graph", "lstm")},
            Allocation(8, 12), 70.0, catalog.spec,
        )
        assert isinstance(share, SpatialShare)
        assert share.allocation_of("missing").is_empty
