"""Tests for repro.workloads.generators: production-shaped traces."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.workloads.generators import (
    DAY_S,
    WEEK_S,
    CompositeTrace,
    FlashCrowdTrace,
    GrowthTrace,
    TraceStatistics,
    WeeklyTrace,
    trace_statistics,
)
from repro.workloads.traces import ConstantTrace, DiurnalTrace


class TestWeeklyTrace:
    def test_weekend_slump(self):
        trace = WeeklyTrace()
        peak_hour = trace.base.peak_time_s
        weekday = trace.load_fraction(peak_hour)          # day 0
        weekend = trace.load_fraction(5 * DAY_S + peak_hour)  # day 5
        assert weekend < weekday

    def test_weekly_periodicity(self):
        trace = WeeklyTrace()
        assert trace.load_fraction(1234.0) == pytest.approx(
            trace.load_fraction(1234.0 + WEEK_S)
        )

    def test_unit_factors_reduce_to_base(self):
        trace = WeeklyTrace(day_factors=(1.0,) * 7)
        for t in (0.0, 3 * 3600.0, 2 * DAY_S + 1000.0):
            assert trace.load_fraction(t) == pytest.approx(
                trace.base.load_fraction(t)
            )

    @given(st.floats(min_value=0.0, max_value=3 * WEEK_S))
    def test_bounds(self, t):
        assert 0.0 <= WeeklyTrace().load_fraction(t) <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            WeeklyTrace(day_factors=(1.0,) * 6)
        with pytest.raises(ConfigError):
            WeeklyTrace(day_factors=(1.0,) * 6 + (-0.5,))


class TestFlashCrowdTrace:
    @pytest.fixture()
    def trace(self):
        return FlashCrowdTrace(
            base=ConstantTrace(0.3),
            events=((1000.0, 600.0, 0.8),),
            decay_s=300.0,
        )

    def test_quiet_before_event(self, trace):
        assert trace.load_fraction(500.0) == pytest.approx(0.3)

    def test_lift_during_event(self, trace):
        # 0.3 + 0.8 * (1 - 0.3) = 0.86
        assert trace.load_fraction(1200.0) == pytest.approx(0.86)

    def test_exponential_decay_after(self, trace):
        just_after = trace.load_fraction(1601.0)
        later = trace.load_fraction(1600.0 + 900.0)
        assert 0.3 < later < just_after <= 0.86 + 1e-9

    def test_overlapping_events_compound_but_cap(self):
        trace = FlashCrowdTrace(
            base=ConstantTrace(0.5),
            events=((0.0, 100.0, 1.0), (0.0, 100.0, 1.0)),
        )
        assert trace.load_fraction(50.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FlashCrowdTrace(ConstantTrace(0.5), events=((-1.0, 10.0, 0.5),))
        with pytest.raises(ConfigError):
            FlashCrowdTrace(ConstantTrace(0.5), events=((0.0, 0.0, 0.5),))
        with pytest.raises(ConfigError):
            FlashCrowdTrace(ConstantTrace(0.5), events=((0.0, 10.0, 1.5),))
        with pytest.raises(ConfigError):
            FlashCrowdTrace(ConstantTrace(0.5), events=(), decay_s=0.0)


class TestGrowthTrace:
    def test_compound_growth(self):
        trace = GrowthTrace(base=ConstantTrace(0.4), weekly_growth=0.10)
        assert trace.load_fraction(0.0) == pytest.approx(0.4)
        assert trace.load_fraction(WEEK_S) == pytest.approx(0.44)
        assert trace.load_fraction(2 * WEEK_S) == pytest.approx(0.484)

    def test_saturates_at_one(self):
        trace = GrowthTrace(base=ConstantTrace(0.9), weekly_growth=0.5)
        assert trace.load_fraction(10 * WEEK_S) == 1.0

    def test_decline_allowed(self):
        trace = GrowthTrace(base=ConstantTrace(0.8), weekly_growth=-0.2)
        assert trace.load_fraction(WEEK_S) == pytest.approx(0.64)

    def test_validation(self):
        with pytest.raises(ConfigError):
            GrowthTrace(base=ConstantTrace(0.5), weekly_growth=-1.5)


class TestCompositeTrace:
    def test_weighted_mixture(self):
        trace = CompositeTrace(
            components=((ConstantTrace(0.2), 1.0), (ConstantTrace(0.8), 3.0))
        )
        assert trace.load_fraction(0.0) == pytest.approx(0.65)

    def test_single_component_passthrough(self):
        trace = CompositeTrace(components=((ConstantTrace(0.37), 2.0),))
        assert trace.load_fraction(123.0) == pytest.approx(0.37)

    def test_phase_shifted_mixture_flattens_peaks(self):
        a = DiurnalTrace(peak_time_s=0.0)
        b = DiurnalTrace(peak_time_s=DAY_S / 2)
        mixed = CompositeTrace(components=((a, 1.0), (b, 1.0)))
        stats = trace_statistics(mixed, horizon_s=DAY_S, samples=288)
        solo = trace_statistics(a, horizon_s=DAY_S, samples=288)
        assert stats.peak_to_mean < solo.peak_to_mean

    def test_validation(self):
        with pytest.raises(ConfigError):
            CompositeTrace(components=())
        with pytest.raises(ConfigError):
            CompositeTrace(components=((ConstantTrace(0.5), -1.0),))
        with pytest.raises(ConfigError):
            CompositeTrace(components=((ConstantTrace(0.5), 0.0),))


class TestTraceStatistics:
    def test_constant(self):
        stats = trace_statistics(ConstantTrace(0.4), horizon_s=DAY_S)
        assert stats.peak == pytest.approx(0.4)
        assert stats.mean == pytest.approx(0.4)
        assert stats.peak_to_mean == pytest.approx(1.0)
        assert stats.off_peak_fraction == 1.0  # 0.4 < 0.5 always

    def test_diurnal_shape(self):
        stats = trace_statistics(
            DiurnalTrace(min_fraction=0.1, max_fraction=0.9), horizon_s=DAY_S
        )
        assert stats.peak == pytest.approx(0.9, abs=0.02)
        assert stats.mean == pytest.approx(0.5, abs=0.02)
        assert 1.5 < stats.peak_to_mean < 2.0
        assert 0.3 < stats.off_peak_fraction < 0.7

    def test_zero_mean_guard(self):
        stats = TraceStatistics(peak=0.0, mean=0.0, p95=0.0, off_peak_fraction=1.0)
        assert stats.peak_to_mean == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigError):
            trace_statistics(ConstantTrace(0.5), samples=1)
        with pytest.raises(ConfigError):
            trace_statistics(ConstantTrace(0.5), horizon_s=0.0)
        with pytest.raises(ConfigError):
            trace_statistics(ConstantTrace(0.5), off_peak_threshold=0.0)


class TestPlanningIntegration:
    def test_weekly_trace_plans_lower_than_flash_crowd(self, xapian):
        """Capacity planning consumes these traces directly."""
        from repro.cost.planning import plan_power

        calm = WeeklyTrace(base=DiurnalTrace(min_fraction=0.1, max_fraction=0.7))
        spiky = FlashCrowdTrace(
            base=DiurnalTrace(min_fraction=0.1, max_fraction=0.7),
            events=((12 * 3600.0, 3600.0, 0.9),),
        )
        calm_plan = plan_power(xapian, calm, horizon_s=WEEK_S, samples=96)
        spiky_plan = plan_power(xapian, spiky, horizon_s=WEEK_S, samples=96)
        assert spiky_plan.provisioned_power_w > calm_plan.provisioned_power_w
