"""Tests for repro.core.admission: when to colocate."""

import pytest

from repro.core.admission import AdmissionController
from repro.errors import ConfigError


@pytest.fixture()
def controller(catalog):
    lc = catalog.lc_apps["xapian"]
    return AdmissionController(
        lc_model=catalog.lc_fits["xapian"].model,
        peak_load=lc.peak_load,
        provisioned_power_w=lc.peak_server_power_w(),
        spec=catalog.spec,
    )


@pytest.fixture()
def be_model(catalog):
    return catalog.be_fits["rnn"].model


class TestDecide:
    def test_admits_at_low_load(self, controller, be_model):
        decision = controller.decide(0.1 * controller.peak_load, be_model)
        assert decision.admit
        assert decision.predicted_be_throughput > 0.1
        assert decision.predicted_headroom_w > 0.0

    def test_rejects_at_peak_load(self, controller, be_model):
        decision = controller.decide(controller.peak_load, be_model)
        assert not decision.admit
        assert decision.reason

    def test_boundary_monotonicity(self, controller, be_model):
        """Once rejected, higher loads stay rejected (scan downward)."""
        admits = [
            controller.decide(f * controller.peak_load, be_model).admit
            for f in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
        ]
        # True prefix then False suffix.
        assert admits == sorted(admits, reverse=True)

    def test_throughput_threshold_bites(self, catalog, be_model):
        lc = catalog.lc_apps["xapian"]
        strict = AdmissionController(
            lc_model=catalog.lc_fits["xapian"].model,
            peak_load=lc.peak_load,
            provisioned_power_w=lc.peak_server_power_w(),
            spec=catalog.spec,
            min_be_throughput=0.9,  # nearly impossible next to any LC load
        )
        decision = strict.decide(0.3 * lc.peak_load, be_model)
        assert not decision.admit
        assert "threshold" in decision.reason

    def test_headroom_floor_bites(self, catalog, be_model):
        lc = catalog.lc_apps["xapian"]
        strict = AdmissionController(
            lc_model=catalog.lc_fits["xapian"].model,
            peak_load=lc.peak_load,
            provisioned_power_w=lc.peak_server_power_w(),
            spec=catalog.spec,
            min_headroom_w=500.0,
        )
        decision = strict.decide(0.1 * lc.peak_load, be_model)
        assert not decision.admit
        assert "headroom" in decision.reason

    def test_negative_load_rejected(self, controller, be_model):
        with pytest.raises(ConfigError):
            controller.decide(-1.0, be_model)


class TestAdmissionBoundary:
    def test_boundary_in_open_interval(self, controller, be_model):
        boundary = controller.admission_boundary(be_model, resolution=50)
        assert 0.3 < boundary < 1.0

    def test_boundary_consistent_with_decide(self, controller, be_model):
        boundary = controller.admission_boundary(be_model, resolution=50)
        assert controller.decide(boundary * controller.peak_load, be_model).admit
        above = min(1.0, boundary + 0.04)
        if above > boundary:
            assert not controller.decide(
                above * controller.peak_load, be_model
            ).admit

    def test_power_hungry_be_admitted_less(self, catalog, controller):
        """graph (power-hungry) should be cut off earlier than lstm on a
        tightly provisioned server."""
        lc = catalog.lc_apps["img-dnn"]  # 133 W, tight
        tight = AdmissionController(
            lc_model=catalog.lc_fits["img-dnn"].model,
            peak_load=lc.peak_load,
            provisioned_power_w=lc.peak_server_power_w(),
            spec=catalog.spec,
            min_be_throughput=0.25,
        )
        graph_boundary = tight.admission_boundary(catalog.be_fits["graph"].model)
        lstm_boundary = tight.admission_boundary(catalog.be_fits["lstm"].model)
        assert lstm_boundary >= graph_boundary

    def test_resolution_validation(self, controller, be_model):
        with pytest.raises(ConfigError):
            controller.admission_boundary(be_model, resolution=1)


class TestValidation:
    def test_constructor_guards(self, catalog):
        model = catalog.lc_fits["xapian"].model
        with pytest.raises(ConfigError):
            AdmissionController(model, peak_load=0.0, provisioned_power_w=150.0,
                                spec=catalog.spec)
        with pytest.raises(ConfigError):
            AdmissionController(model, peak_load=100.0, provisioned_power_w=0.0,
                                spec=catalog.spec)
        with pytest.raises(ConfigError):
            AdmissionController(model, peak_load=100.0, provisioned_power_w=150.0,
                                spec=catalog.spec, min_be_throughput=1.0)
        with pytest.raises(ConfigError):
            AdmissionController(model, peak_load=100.0, provisioned_power_w=150.0,
                                spec=catalog.spec, load_margin=0.9)
