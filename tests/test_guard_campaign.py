"""Chaos campaigns: mutation, coverage, shrinking, fixtures, detection.

The headline regression is the planted-bug drill (the acceptance
criterion of the guard subsystem): disable only the cap loop's
stale-meter watchdog under a power-unaware manager, and the campaign
must detect the resulting power-cap violation, shrink the schedule to a
minimal reproducer, and that reproducer must round-trip through a
pinned fixture and still violate.
"""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.apps import REFERENCE_SPEC, best_effort_apps, latency_critical_apps
from repro.errors import ConfigError
from repro.evaluation.pipeline import HeraclesFactory
from repro.faults import (
    FaultSchedule,
    LoadSpike,
    MeterDrift,
    MeterStuckAt,
    ModelStaleness,
)
from repro.guard import GuardConfig
from repro.guard.campaign import (
    CampaignConfig,
    ColocationCaseRunner,
    coverage_signature,
    mutate_schedule,
    run_campaign,
    shrink_schedule,
)
from repro.guard.fixtures import (
    FIXTURE_FORMAT,
    fault_from_data,
    fault_to_data,
    load_fixture,
    schedule_from_data,
    write_fixture,
)
from repro.guard.invariants import GuardReport, Violation
from repro.hwmodel.capping import PowerCapController

#: The pairing the planted bug is detectable under: moderate LC load
#: with a BE tenant holding real resources while the meter reads low.
DETECT_LC = "img-dnn"
DETECT_BE = "graph"

#: The smoke-proven search budget: 4 seed inputs + 8 rounds x 4 mutants.
DETECT_CONFIG = CampaignConfig(
    seed=0, rounds=8, batch_size=4, initial_corpus=4,
    horizon_s=20.0, max_faults=4, mean_duration_s=8.0,
)


@dataclass(frozen=True)
class WatchdogDisabledCapper:
    """Capper double with the stale-meter watchdog turned off."""

    def __call__(self, server, meter):
        return PowerCapController(server=server, meter=meter, watchdog=False)


def make_runner(capper_factory=None, duration_s=20.0, level=0.5):
    lc = latency_critical_apps()[DETECT_LC]
    return ColocationCaseRunner(
        lc_app=lc,
        manager_factory=HeraclesFactory(),
        spec=REFERENCE_SPEC,
        provisioned_power_w=lc.peak_server_power_w(),
        be_app=best_effort_apps()[DETECT_BE],
        level=level,
        duration_s=duration_s,
        capper_factory=capper_factory,
    )


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rounds": -1},
        {"batch_size": 0},
        {"initial_corpus": 0},
        {"horizon_s": 0.0},
        {"mean_duration_s": 0.0},
        {"max_faults": 0},
        {"shrink_budget": -1},
        {"workers": 0},
    ])
    def test_bad_campaign_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CampaignConfig(**kwargs)

    def test_enforce_mode_runner_rejected(self):
        lc = latency_critical_apps()[DETECT_LC]
        with pytest.raises(ConfigError, match="record-mode guard"):
            ColocationCaseRunner(
                lc_app=lc, manager_factory=HeraclesFactory(),
                spec=REFERENCE_SPEC,
                provisioned_power_w=lc.peak_server_power_w(),
                guard=GuardConfig(mode="enforce"),
            )

    @pytest.mark.parametrize("kwargs", [
        {"level": 1.5},
        {"duration_s": 0.0},
    ])
    def test_bad_runner_knobs_rejected(self, kwargs):
        lc = latency_critical_apps()[DETECT_LC]
        with pytest.raises(ConfigError):
            ColocationCaseRunner(
                lc_app=lc, manager_factory=HeraclesFactory(),
                spec=REFERENCE_SPEC,
                provisioned_power_w=lc.peak_server_power_w(),
                **kwargs,
            )


class TestMutation:
    def test_same_seed_same_mutant(self):
        config = CampaignConfig()
        base = FaultSchedule([MeterStuckAt(start_s=2.0, duration_s=5.0)])
        first = mutate_schedule(base, np.random.default_rng(42), config)
        second = mutate_schedule(base, np.random.default_rng(42), config)
        assert first.faults == second.faults

    def test_empty_schedule_can_only_gain(self, rng):
        mutant = mutate_schedule(FaultSchedule(()), rng, CampaignConfig())
        assert len(mutant) == 1

    def test_max_faults_is_respected(self, rng):
        config = CampaignConfig(max_faults=2)
        schedule = FaultSchedule(())
        for _ in range(50):
            schedule = mutate_schedule(schedule, rng, config)
            assert len(schedule) <= config.max_faults

    def test_every_mutation_changes_the_schedule(self, rng):
        schedule = FaultSchedule([
            MeterDrift(start_s=1.0, duration_s=6.0, rate_w_per_s=1.0)
        ])
        for _ in range(30):
            mutant = mutate_schedule(schedule, rng, CampaignConfig())
            assert mutant.faults != schedule.faults
            schedule = mutant


class TestCoverageSignature:
    def _clean(self):
        return GuardReport(mode="record", checks=10, total_violations=0,
                           violations=())

    def test_zero_counters_contribute_nothing(self):
        assert coverage_signature(
            {"cap.watchdog_trips": 0}, self._clean()
        ) == frozenset()

    def test_order_of_magnitude_buckets(self):
        one = coverage_signature({"cap.watchdog_trips": 1}, self._clean())
        few = coverage_signature({"cap.watchdog_trips": 3}, self._clean())
        assert one == {("cap.watchdog_trips", 1)}
        assert few == {("cap.watchdog_trips", 2)}
        # 17 and 18 trips are the same coverage: not a new magnitude.
        assert coverage_signature(
            {"cap.watchdog_trips": 17}, self._clean()
        ) == coverage_signature({"cap.watchdog_trips": 18}, self._clean())

    def test_violations_contribute_their_own_points(self):
        v = Violation("power-cap", 1.0, "m", 1.0, 0.0)
        report = GuardReport(mode="record", checks=10, total_violations=3,
                             violations=(v, v, v))
        assert ("violation.power-cap", 2) in coverage_signature({}, report)


class TestFixtures:
    SCHEDULE = FaultSchedule([
        MeterStuckAt(start_s=2.0, duration_s=8.0, value_w=31.5),
        LoadSpike(start_s=4.0, duration_s=6.0, factor=1.7),
    ])

    def test_round_trip_preserves_every_field(self, tmp_path):
        path = tmp_path / "repro.json"
        write_fixture(path, self.SCHEDULE, invariants=("power-cap",),
                      note="campaign seed 0")
        schedule, meta = load_fixture(path)
        assert schedule.faults == self.SCHEDULE.faults
        assert meta["invariants"] == ["power-cap"]
        assert meta["note"] == "campaign seed 0"
        assert meta["format"] == FIXTURE_FORMAT

    def test_fault_data_is_json_native(self):
        data = fault_to_data(self.SCHEDULE.faults[0])
        assert json.loads(json.dumps(data)) == data
        assert fault_from_data(data) == self.SCHEDULE.faults[0]

    def test_live_object_faults_are_refused(self):
        stale = ModelStaleness(start_s=1.0, duration_s=2.0, model=object())
        with pytest.raises(ConfigError, match="not serializable"):
            fault_to_data(stale)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            fault_from_data({"kind": "DiskOnFire", "start_s": 0.0})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError, match="unknown fields"):
            fault_from_data({
                "kind": "MeterStuckAt", "start_s": 0.0, "duration_s": 1.0,
                "wattage": 3.0,
            })

    def test_wrong_typed_field_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            fault_from_data({
                "kind": "MeterStuckAt", "start_s": 0.0, "value_w": "lots",
            })

    def test_field_validation_still_applies(self):
        # A hand-edited fixture cannot smuggle in an invalid window.
        with pytest.raises(ConfigError):
            fault_from_data({"kind": "MeterStuckAt", "start_s": -1.0})

    def test_non_list_schedule_rejected(self):
        with pytest.raises(ConfigError, match="JSON array"):
            schedule_from_data({"kind": "MeterStuckAt"})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no guard fixture"):
            load_fixture(tmp_path / "absent.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_fixture(path)

    def test_unknown_format_tag_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format": "pocolo-guard-fixture/99",
                                    "faults": []}))
        with pytest.raises(ConfigError, match="unknown fixture format"):
            load_fixture(path)


class TestCampaignSearch:
    @pytest.mark.slow
    def test_healthy_stack_stays_clean_and_deterministic(self):
        runner = make_runner(duration_s=10.0)
        config = CampaignConfig(seed=3, rounds=1, batch_size=2,
                                initial_corpus=2, horizon_s=10.0,
                                mean_duration_s=4.0)
        first = run_campaign(runner, config)
        second = run_campaign(runner, config)
        assert not first.found
        assert first.cases_run == config.initial_corpus + config.batch_size
        assert (first.cases_run, first.corpus_size, first.coverage_points) == (
            second.cases_run, second.corpus_size, second.coverage_points
        )

    @pytest.mark.slow
    def test_planted_watchdog_bug_is_detected_and_shrunk(self, tmp_path):
        """The guard acceptance criterion, as a permanent regression."""
        runner = make_runner(capper_factory=WatchdogDisabledCapper())
        result = run_campaign(runner, DETECT_CONFIG)
        assert result.found, (
            "the campaign must detect the watchdog-disabled capper"
        )
        case = result.violations[0]
        assert "power-cap" in case.invariants
        # Shrinking never grows the schedule, and the minimal reproducer
        # still violates when re-run directly.
        assert 1 <= len(case.shrunk) <= len(case.schedule)
        outcome = runner.run(case.shrunk)
        assert "power-cap" in outcome.violated_invariants()
        # The reproducer round-trips through a pinned fixture intact.
        path = tmp_path / "watchdog-bug.json"
        write_fixture(path, case.shrunk, invariants=case.invariants,
                      note="planted watchdog=False regression")
        reloaded, meta = load_fixture(path)
        assert reloaded.faults == case.shrunk.faults
        assert "power-cap" in meta["invariants"]
        # The fixed stack (watchdog back on) survives the reproducer —
        # what a pinned fixture asserts in perpetuity.
        healthy = make_runner().run(reloaded)
        assert "power-cap" not in healthy.violated_invariants()

    def test_shrink_is_bounded_by_its_budget(self):
        runner = make_runner(capper_factory=WatchdogDisabledCapper())
        stuck = MeterStuckAt(start_s=1.0, duration_s=18.0, value_w=20.0)
        noise = MeterDrift(start_s=2.0, duration_s=4.0, rate_w_per_s=0.5)
        result = shrink_schedule(
            runner, FaultSchedule([stuck, noise]), ["power-cap"], budget=3
        )
        assert result.evaluations <= 3
        assert 1 <= len(result.schedule) <= 2
