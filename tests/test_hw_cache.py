"""Tests for repro.hwmodel.cache: CAT-style LLC way partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AllocationError
from repro.hwmodel.cache import CacheAllocator, _overlaps
from repro.hwmodel.spec import ServerSpec


@pytest.fixture()
def cache(spec):
    alloc = CacheAllocator(spec)
    alloc.set_primary("lc")
    return alloc


class TestCacheAllocator:
    def test_starts_all_free(self, cache, spec):
        assert cache.free_ways() == spec.llc_ways
        assert cache.ways_of("lc") == 0
        assert cache.mask_of("lc") == 0

    def test_primary_anchors_at_way_zero(self, cache):
        mask = cache.assign("lc", 5)
        assert mask == 0b11111

    def test_secondary_packs_at_top(self, cache, spec):
        mask = cache.assign("be", 4)
        expected = 0b1111 << (spec.llc_ways - 4)
        assert mask == expected

    def test_masks_are_contiguous(self, cache):
        for count in (1, 3, 7, 20):
            mask = cache.assign("lc", count)
            bits = bin(mask)[2:]
            assert "01" not in bits.strip("0") or bits.strip("0").count("0") == 0
            cache.assign("lc", 0)

    def test_disjoint_when_fits(self, cache):
        lc_mask = cache.assign("lc", 8)
        be_mask = cache.assign("be", 12)
        assert lc_mask & be_mask == 0
        assert cache.free_ways() == 0

    def test_collision_raises(self, cache):
        cache.assign("lc", 12)
        with pytest.raises(AllocationError):
            cache.assign("be", 9)

    def test_resize_primary_without_remasking_secondary(self, cache):
        cache.assign("lc", 5)
        be_before = cache.assign("be", 10)
        cache.assign("lc", 8)
        assert cache.mask_of("be") == be_before

    def test_zero_count_removes_mask(self, cache):
        cache.assign("lc", 5)
        assert cache.assign("lc", 0) == 0
        assert cache.ways_of("lc") == 0

    def test_too_many_ways_rejected(self, cache, spec):
        with pytest.raises(AllocationError):
            cache.assign("lc", spec.llc_ways + 1)

    def test_negative_count_rejected(self, cache):
        with pytest.raises(AllocationError):
            cache.assign("lc", -2)

    def test_release(self, cache, spec):
        cache.assign("lc", 6)
        cache.release("lc")
        assert cache.free_ways() == spec.llc_ways

    def test_snapshot_reports_runs(self, cache):
        cache.assign("lc", 3)
        cache.assign("be", 4)
        snap = cache.snapshot()
        assert snap["lc"] == (0, 3)
        assert snap["be"] == (16, 4)

    def test_without_primary_everyone_anchors_low(self, spec):
        alloc = CacheAllocator(spec)  # no primary declared
        assert alloc.assign("solo", 4) == 0b1111

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20))
    def test_disjoint_iff_counts_fit(self, lc_ways, be_ways):
        spec = ServerSpec()
        alloc = CacheAllocator(spec, primary_tenant="lc")
        alloc.assign("lc", lc_ways)
        if lc_ways + be_ways <= spec.llc_ways:
            mask = alloc.assign("be", be_ways)
            assert mask & alloc.mask_of("lc") == 0
        elif be_ways > spec.llc_ways:
            with pytest.raises(AllocationError):
                alloc.assign("be", be_ways)
        else:
            with pytest.raises(AllocationError):
                alloc.assign("be", be_ways)


class TestOverlapHelper:
    def test_disjoint(self):
        assert not _overlaps((0, 3), (3, 4))

    def test_overlapping(self):
        assert _overlaps((0, 5), (4, 2))

    def test_zero_width_never_overlaps(self):
        assert not _overlaps((0, 0), (0, 5))
        assert not _overlaps((3, 2), (4, 0))
