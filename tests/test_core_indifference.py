"""Tests for repro.core.indifference: curves, expansion path, Edgeworth box."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.indifference import (
    EdgeworthBox,
    expansion_path,
    indifference_curve,
    path_is_ray,
)
from repro.core.utility import (
    CobbDouglasParams,
    IndirectUtilityModel,
    LinearPowerParams,
)
from repro.errors import ConfigError


@pytest.fixture()
def model():
    return IndirectUtilityModel(
        perf=CobbDouglasParams(alpha0=1.5, alphas=(0.6, 0.4)),
        power=LinearPowerParams(p_static=5.0, p=(8.0, 1.5)),
    )


class TestIndifferenceCurve:
    def test_every_point_has_equal_performance(self, model):
        curve = indifference_curve(model, perf_level=4.0, ways=[2, 5, 10, 20])
        for cores, ways in curve:
            assert model.performance((cores, ways)) == pytest.approx(4.0)

    def test_curve_is_decreasing_in_ways(self, model):
        curve = indifference_curve(model, perf_level=4.0, ways=[2, 5, 10, 20])
        cores = [c for c, _ in curve]
        assert cores == sorted(cores, reverse=True)

    def test_higher_level_needs_more_cores(self, model):
        low = indifference_curve(model, 2.0, ways=[10])[0][0]
        high = indifference_curve(model, 6.0, ways=[10])[0][0]
        assert high > low

    def test_validation(self, model):
        with pytest.raises(ConfigError):
            indifference_curve(model, 0.0, ways=[5])
        with pytest.raises(ConfigError):
            indifference_curve(model, 1.0, ways=[0])

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.5, max_value=20.0),
           st.floats(min_value=1.0, max_value=20.0))
    def test_curve_inverts_performance(self, level, ways):
        model = IndirectUtilityModel(
            perf=CobbDouglasParams(alpha0=1.5, alphas=(0.6, 0.4)),
            power=LinearPowerParams(p_static=5.0, p=(8.0, 1.5)),
        )
        (cores, w), = indifference_curve(model, level, ways=[ways])
        assert model.performance((cores, w)) == pytest.approx(level, rel=1e-9)


class TestExpansionPath:
    def test_path_is_a_ray(self, model):
        path = expansion_path(model, perf_levels=[1.0, 2.0, 4.0, 8.0])
        assert path_is_ray(path, tolerance=1e-9)

    def test_ray_slope_is_preference_ratio(self, model):
        (c, w), = expansion_path(model, [3.0])
        expected = (0.6 / 8.0) / (0.4 / 1.5)
        assert c / w == pytest.approx(expected)

    def test_points_lie_on_their_curves(self, model):
        for level, (c, w) in zip([1.0, 5.0], expansion_path(model, [1.0, 5.0])):
            assert model.performance((c, w)) == pytest.approx(level)

    def test_path_is_ray_edge_cases(self):
        assert path_is_ray([])
        assert path_is_ray([(1.0, 2.0)])
        assert not path_is_ray([(1.0, 2.0), (2.0, 2.0)])


class TestEdgeworthBox:
    def test_primary_and_spare_are_complements(self, model, spec):
        box = EdgeworthBox(model=model, spec=spec)
        point = box.point(perf_level=3.0)
        assert point.primary[0] + point.spare[0] == pytest.approx(spec.cores)
        assert point.primary[1] + point.spare[1] == pytest.approx(spec.llc_ways)

    def test_spare_clipped_at_zero(self, model, spec):
        box = EdgeworthBox(model=model, spec=spec)
        huge = model.performance((spec.cores * 3.0, spec.llc_ways * 3.0))
        point = box.point(huge)
        assert point.spare[0] >= 0.0
        assert point.spare[1] >= 0.0

    def test_spare_shrinks_with_load(self, model, spec):
        box = EdgeworthBox(model=model, spec=spec)
        trace = box.trace([1.0, 2.0, 4.0])
        spare_cores = [p.spare[0] for p in trace]
        assert spare_cores == sorted(spare_cores, reverse=True)

    def test_primary_power_increases_with_load(self, model, spec):
        box = EdgeworthBox(model=model, spec=spec)
        trace = box.trace([1.0, 2.0, 4.0])
        powers = [p.primary_power_w for p in trace]
        assert powers == sorted(powers)

    def test_feasible_corner_equals_spare(self, model, spec):
        box = EdgeworthBox(model=model, spec=spec)
        assert box.secondary_feasible_corner(2.0) == box.point(2.0).spare


class TestPaperShape:
    """Fig 5/6 as the paper describes them, using the fitted sphinx model."""

    def test_sphinx_expansion_prefers_ways(self, catalog):
        model = catalog.lc_fits["sphinx"].model
        path = expansion_path(model, [model.performance((2.0, 8.0))])
        cores, ways = path[0]
        assert ways > cores  # cache-leaning power-efficient path

    def test_sphinx_low_load_point_matches_fig6(self, catalog):
        """Fig 6: 'at 20% load, primary uses ~1 core and ~5 cache ways'."""
        model = catalog.lc_fits["sphinx"].model
        app = catalog.lc_apps["sphinx"]
        cores, ways = model.least_power_allocation(0.2 * app.peak_load)
        assert 1.0 <= cores <= 3.0
        assert 4.0 <= ways <= 8.0
