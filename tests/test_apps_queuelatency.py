"""Tests for repro.apps.queuelatency: the measured-latency alternative."""

from dataclasses import replace

import pytest

from repro.apps.latency import LatencySlo, TailLatencyModel
from repro.apps.queuelatency import QueueBackedLatencyModel
from repro.core.server_manager import PowerOptimizedManager
from repro.errors import ConfigError
from repro.sim.colocation import ColocationSim, SimConfig, build_colocated_server
from repro.workloads.traces import ConstantTrace


@pytest.fixture(scope="module")
def slo():
    return LatencySlo(p95_s=0.5, p99_s=1.0)


@pytest.fixture(scope="module")
def model(slo):
    return QueueBackedLatencyModel(slo, num_requests=4_000, seed=1)


class TestAnchoringAndShape:
    def test_slo_hit_exactly_at_capacity(self, model):
        assert model.p99_s(load=100.0, capacity=100.0) == pytest.approx(1.0)

    def test_monotone_in_load(self, model):
        p99s = [model.p99_s(load, 100.0) for load in (10, 40, 70, 95, 100)]
        assert p99s == sorted(p99s)

    def test_light_load_far_below_slo(self, model):
        assert model.p99_s(5.0, 100.0) < 0.5

    def test_overload_extrapolates_upward_and_saturates(self, model, slo):
        over = model.p99_s(150.0, 100.0)
        assert over > slo.p99_s
        deep = model.p99_s(10_000.0, 100.0)
        assert deep <= slo.p99_s * 50.0 + 1e-9

    def test_zero_capacity_saturates(self, model, slo):
        assert model.p99_s(10.0, 0.0) == slo.p99_s * 50.0

    def test_slack_signs(self, model):
        assert model.slack(50.0, 100.0) > 0
        assert model.slack(100.0, 100.0) == pytest.approx(0.0, abs=1e-9)
        assert model.slack(130.0, 100.0) < 0

    def test_curve_accessor(self, model):
        curve = model.curve()
        assert curve[-1][0] == 1.0
        assert curve[-1][1] == pytest.approx(1.0)


class TestInverses:
    def test_max_load_round_trip(self, model):
        load = model.max_load_for_slack(100.0, 0.10)
        assert 0.0 < load <= 100.0
        assert model.slack(load, 100.0) == pytest.approx(0.10, abs=0.01)

    def test_capacity_for_load_round_trip(self, model):
        cap = model.capacity_for_load(80.0, 0.10)
        assert model.slack(80.0, cap) == pytest.approx(0.10, abs=0.01)

    def test_validation(self, model):
        with pytest.raises(ConfigError):
            model.max_load_for_slack(100.0, 1.0)
        with pytest.raises(ConfigError):
            model.p99_s(-1.0, 100.0)


class TestAgainstAnalyticModel:
    def test_same_anchor_same_direction(self, model, slo):
        analytic = TailLatencyModel(slo=slo)
        for rho in (0.3, 0.6, 0.9, 1.0):
            measured = model.p99_s(rho * 100.0, 100.0)
            predicted = analytic.p99_s(rho * 100.0, 100.0)
            assert measured <= slo.p99_s * 1.01 if rho <= 1.0 else True
            # Both models agree exactly at the anchor.
            if rho == 1.0:
                assert measured == pytest.approx(predicted)

    def test_construction_validation(self, slo):
        with pytest.raises(ConfigError):
            QueueBackedLatencyModel(slo, rho_grid=(0.5, 1.0))
        with pytest.raises(ConfigError):
            QueueBackedLatencyModel(slo, rho_grid=(0.5, 0.4, 1.0))
        with pytest.raises(ConfigError):
            QueueBackedLatencyModel(slo, rho_grid=(0.2, 0.5, 0.9))


class TestDropInWithControllers:
    def test_pom_keeps_slo_against_measured_latency(self, catalog):
        """The integration claim: the controller stack works unchanged
        when the latency behaviour comes from a queue, not a formula."""
        xapian = catalog.lc_apps["xapian"]
        queue_latency = QueueBackedLatencyModel(
            xapian.latency.slo, num_requests=4_000, seed=2
        )
        lc = replace(xapian, latency=queue_latency)
        be = catalog.be_apps["rnn"]
        server = build_colocated_server(
            catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(),
            be_app=be,
        )
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        sim = ColocationSim(
            server=server, lc_app=lc, trace=ConstantTrace(0.5),
            manager=manager, be_app=be, config=SimConfig(seed=0),
        )
        result = sim.run(duration_s=30.0)
        assert result.slo_violation_fraction < 0.10
        assert result.avg_be_throughput_norm > 0.1
