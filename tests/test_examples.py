"""Smoke tests: every example script must run end to end.

Each example is executed in-process (``runpy``) with stdout captured;
the tests assert the script completes and prints its headline artifacts.
The slowest example (full cluster scheduling) is excluded here — it runs
as part of the benchmark suite's workload instead.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "POColo placement" in out
        assert "graph" in out and "sphinx" in out
        assert "SLO violation fraction" in out

    def test_custom_application(self, capsys):
        out = run_example("custom_application.py", capsys)
        assert "memcached" in out
        assert "transcode" in out
        assert "Placement with the custom apps" in out

    def test_multi_tenant_sharing(self, capsys):
        out = run_example("multi_tenant_sharing.py", capsys)
        assert "Time-sharing" in out
        assert "Spatial advantage" in out

    def test_admission_and_planning(self, capsys):
        out = run_example("admission_and_planning.py", capsys)
        assert "Capacity plan" in out
        assert "Admission control" in out
        assert "Stranded power" in out

    def test_fault_injection(self, capsys):
        out = run_example("fault_injection.py", capsys)
        assert "Stuck meter" in out
        assert "watchdog trips" in out
        assert "model-distrust fallbacks" in out
        assert "Degradation under faults" in out
        assert "displaced BE" in out

    def test_resume_sweep(self, capsys):
        out = run_example("resume_sweep.py", capsys)
        assert "Clean reference run" in out
        assert "checkpoint survived" in out
        assert "bit-identical to clean run: True" in out
        assert "Crash-safe resume: OK" in out

    @pytest.mark.slow
    def test_websearch_diurnal(self, capsys):
        out = run_example("websearch_diurnal.py", capsys)
        assert "Day summary" in out
        assert "avg BE throughput" in out
