"""Tests for repro.hwmodel.capping: the 100 ms power-cap loop."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hwmodel.capping import PowerCapController
from repro.hwmodel.meter import PowerMeter
from repro.hwmodel.server import PRIMARY, SECONDARY, Server
from repro.hwmodel.spec import Allocation


class FreqSensitiveModel:
    """Power scales with cores * (f/2.2)^2 — enough structure for capping."""

    def __init__(self, per_core=10.0):
        self.per_core = per_core

    def active_power_w(self, alloc):
        phi = alloc.freq_ghz / 2.2
        return alloc.cores * self.per_core * phi * phi


def build(spec, cap_w, be_cores=6, noise=0.0, seed=0, **ctrl_kwargs):
    server = Server(spec, provisioned_power_w=cap_w)
    server.attach("lc", FreqSensitiveModel(per_core=5.0), role=PRIMARY)
    server.apply_allocation("lc", Allocation(cores=2, ways=4))
    server.attach("be", FreqSensitiveModel(per_core=10.0), role=SECONDARY)
    server.apply_allocation("be", Allocation(cores=be_cores, ways=10))
    meter = PowerMeter(server.power_w, rng=np.random.default_rng(seed),
                       noise_sigma_w=noise, ewma_alpha=1.0)
    return server, PowerCapController(server, meter, **ctrl_kwargs)


class TestThrottleOrdering:
    def test_frequency_reduced_before_duty(self, spec):
        # true power: 50 idle + 10 lc + 60 be = 120; cap at 110
        server, ctrl = build(spec, cap_w=110.0)
        ctrl.step(0.0)
        be = server.allocation_of("be")
        assert be.freq_ghz < spec.max_freq_ghz
        assert be.duty_cycle == 1.0

    def test_duty_engaged_only_at_min_frequency(self, spec):
        server, ctrl = build(spec, cap_w=80.0)  # deep cap
        t = ctrl.run_until_stable(max_steps=300)
        be = server.allocation_of("be")
        # 50 + 10 + 60*(1.2/2.2)^2 = 77.9 > 80? -> 50+10+17.9=77.9 < 80, so
        # frequency floor alone may suffice; drive deeper to force duty.
        server2, ctrl2 = build(spec, cap_w=70.0)
        ctrl2.run_until_stable(max_steps=300)
        be2 = server2.allocation_of("be2" if False else "be")
        assert be2.freq_ghz == pytest.approx(spec.min_freq_ghz)
        assert be2.duty_cycle < 1.0

    def test_converges_under_cap(self, spec):
        server, ctrl = build(spec, cap_w=100.0)
        ctrl.run_until_stable(max_steps=300)
        assert server.power_w() <= 100.0 + 1e-6

    def test_primary_untouched(self, spec):
        server, ctrl = build(spec, cap_w=90.0)
        before = server.allocation_of("lc")
        ctrl.run_until_stable(max_steps=300)
        assert server.allocation_of("lc") == before


class TestRestoreOrdering:
    def test_restores_duty_before_frequency(self, spec):
        server, ctrl = build(spec, cap_w=200.0)
        server.apply_allocation(
            "be", Allocation(cores=6, ways=10, freq_ghz=1.2, duty_cycle=0.5)
        )
        ctrl.step(0.0)
        be = server.allocation_of("be")
        assert be.duty_cycle > 0.5
        assert be.freq_ghz == pytest.approx(1.2)

    def test_full_recovery_when_headroom(self, spec):
        server, ctrl = build(spec, cap_w=500.0)
        server.apply_allocation(
            "be", Allocation(cores=6, ways=10, freq_ghz=1.5, duty_cycle=0.7)
        )
        for i in range(100):
            ctrl.step(i * 0.1)
        be = server.allocation_of("be")
        assert be.duty_cycle == pytest.approx(1.0)
        assert be.freq_ghz == pytest.approx(spec.max_freq_ghz)

    def test_hysteresis_band_prevents_flapping(self, spec):
        # Sit just under the cap: inside the restore margin, nothing moves.
        server, ctrl = build(spec, cap_w=121.0, restore_margin_w=5.0)
        # power = 120, cap 121, margin 5 -> no throttle (under cap), no
        # restore (within margin): allocation must be stable.
        before = server.allocation_of("be")
        for i in range(20):
            ctrl.step(i * 0.1)
        assert server.allocation_of("be") == before


class TestStats:
    def test_counters_track_actions(self, spec):
        server, ctrl = build(spec, cap_w=100.0)
        ctrl.run_until_stable(max_steps=300)
        assert ctrl.stats.samples > 0
        assert ctrl.stats.throttle_events > 0
        assert ctrl.stats.over_cap_samples > 0
        assert 0.0 < ctrl.stats.over_cap_fraction <= 1.0
        assert 0.0 < ctrl.stats.throttle_fraction <= 1.0

    def test_no_secondary_no_actions(self, spec):
        server = Server(spec, provisioned_power_w=60.0)
        server.attach("lc", FreqSensitiveModel(), role=PRIMARY)
        server.apply_allocation("lc", Allocation(cores=4, ways=4))
        meter = PowerMeter(server.power_w, rng=np.random.default_rng(0),
                           noise_sigma_w=0.0)
        ctrl = PowerCapController(server, meter)
        ctrl.step(0.0)
        assert ctrl.stats.throttle_events == 0
        assert ctrl.stats.over_cap_samples == 1  # 50+40 = 90 > 60

    def test_parked_secondary_no_actions(self, spec):
        server, ctrl = build(spec, cap_w=90.0)
        server.release_allocation("be")
        ctrl.step(0.0)
        assert ctrl.stats.throttle_events == 0


class TestValidation:
    def test_bad_parameters_rejected(self, spec):
        server, _ = build(spec, cap_w=100.0)
        meter = PowerMeter(server.power_w, rng=np.random.default_rng(0))
        with pytest.raises(ConfigError):
            PowerCapController(server, meter, duty_step=0.0)
        with pytest.raises(ConfigError):
            PowerCapController(server, meter, min_duty_cycle=1.0)
        with pytest.raises(ConfigError):
            PowerCapController(server, meter, restore_margin_w=-1.0)

    def test_noisy_meter_still_converges(self, spec):
        server, ctrl = build(spec, cap_w=100.0, noise=1.0, seed=3)
        for i in range(200):
            ctrl.step(i * 0.1)
        assert server.power_w() <= 102.0  # small slack for noise
