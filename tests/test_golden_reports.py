"""Golden snapshot tests: regenerate pinned reports and diff them.

Two ``benchmarks/out`` artifacts are committed as golden snapshots
(``repro.evaluation.reports.GOLDEN_REPORTS``).  These tests rebuild each
one from scratch — fitted catalog, performance matrix (vectorized
engine path), solver, rendering — and require byte equality with the
committed file.  Any drift in the models, the matrix, the solvers, or
the table renderer shows up as a readable text diff.

To update a snapshot intentionally::

    PYTHONPATH=src python -m pytest benchmarks/test_abl2_solver_choice.py \
        benchmarks/test_abl9_fleet_scale.py -q --benchmark-disable
    git add benchmarks/out/abl2_solver_choice.txt \
        benchmarks/out/abl9_fleet_totals.txt
"""

import pathlib

import pytest

from repro.engine.select import default_engine
from repro.evaluation import reports
from repro.evaluation.pipeline import fit_catalog

OUT_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "out"


@pytest.fixture(scope="module")
def catalog():
    return fit_catalog(seed=7)


@pytest.mark.parametrize("filename,builder", reports.GOLDEN_REPORTS)
def test_golden_report_matches_committed(catalog, filename, builder):
    committed = (OUT_DIR / filename).read_text()
    regenerated = getattr(reports, builder)(catalog) + "\n"
    assert regenerated == committed, (
        f"{filename} drifted from its committed snapshot; if the change "
        "is intended, regenerate via the benchmark and commit the file "
        "(see this module's docstring)"
    )


@pytest.mark.parametrize("filename,builder", reports.GOLDEN_REPORTS)
def test_golden_report_matches_under_batched_engine(
    catalog, filename, builder
):
    """The engine knob must not leak into report rendering.

    Selecting the batched simulation core changes *how* sweeps execute,
    never *what* any artifact contains — the pinned ablation reports
    regenerate byte-for-byte with ``engine="batched"`` as the session
    default.
    """
    committed = (OUT_DIR / filename).read_text()
    with default_engine("batched"):
        regenerated = getattr(reports, builder)(catalog) + "\n"
    assert regenerated == committed, (
        f"{filename} drifted when regenerated under engine='batched'; "
        "the engine selection must be result-invariant"
    )


def test_golden_registry_names_real_builders():
    for filename, builder in reports.GOLDEN_REPORTS:
        assert (OUT_DIR / filename).exists(), f"missing snapshot {filename}"
        assert callable(getattr(reports, builder))
