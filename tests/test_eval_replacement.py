"""Tests for repro.evaluation.replacement: static vs dynamic placement."""

import pytest

from repro.core.placement import pocolo_placement
from repro.errors import ConfigError
from repro.evaluation.replacement import (
    compare_replacement,
    matrix_at_loads,
    phase_loads,
)


class TestPhaseLoads:
    def test_staggered_peaks(self, catalog):
        # At phase 0, the first server peaks; a quarter-day later the
        # second one does.
        names = list(catalog.lc_apps)
        at0 = phase_loads(catalog, 0.0)
        at25 = phase_loads(catalog, 0.25)
        assert at0[names[0]] == pytest.approx(0.9)
        assert at25[names[1]] == pytest.approx(0.9)

    def test_bounds(self, catalog):
        for phase in (0.0, 0.1, 0.33, 0.7):
            for load in phase_loads(catalog, phase).values():
                assert 0.1 - 1e-9 <= load <= 0.9 + 1e-9


class TestMatrixAtLoads:
    def test_busy_server_offers_less(self, catalog):
        names = list(catalog.lc_apps)
        low = matrix_at_loads(catalog, {n: 0.1 for n in names})
        high = matrix_at_loads(catalog, {n: 0.9 for n in names})
        assert low.values.sum() > high.values.sum()

    def test_mixed_loads_shape_the_columns(self, catalog):
        names = list(catalog.lc_apps)
        loads = {n: 0.1 for n in names}
        loads[names[0]] = 0.9
        matrix = matrix_at_loads(catalog, loads)
        busy_col = matrix.values[:, 0]
        idle_col = matrix.values[:, 1]
        assert busy_col.mean() < idle_col.mean()

    def test_slammed_server_gets_the_cheapest_sacrifice(self, catalog):
        """With a 1:1 matching someone must take the slammed server; the
        LP must still land on the brute-force optimum for the phase."""
        from repro.solvers.hungarian import brute_force_assignment_max

        names = list(catalog.lc_apps)
        loads = {n: 0.15 for n in names}
        loads["sphinx"] = 0.95  # sphinx is slammed this phase
        matrix = matrix_at_loads(catalog, loads)
        decision = pocolo_placement(matrix)
        _, oracle_total = brute_force_assignment_max(matrix.values)
        assert decision.predicted_total == pytest.approx(oracle_total)
        # The slammed column offers ~nothing this phase.
        sacrificed = next(be for be, lc in decision.mapping.items()
                          if lc == "sphinx")
        assert matrix.cell(sacrificed, "sphinx") < 0.05


class TestCompareReplacement:
    def test_free_dynamic_at_least_static(self, catalog):
        result = compare_replacement(catalog)
        assert result.dynamic_total_by_penalty[0.0] >= result.static_total - 1e-9

    def test_penalty_monotone(self, catalog):
        result = compare_replacement(catalog)
        totals = [
            result.dynamic_total_by_penalty[p]
            for p in sorted(result.dynamic_total_by_penalty)
        ]
        assert totals == sorted(totals, reverse=True)

    def test_crossover_exists_in_sweep(self, catalog):
        result = compare_replacement(catalog)
        assert result.crossover_penalty() <= 0.20

    def test_validation(self, catalog):
        with pytest.raises(ConfigError):
            compare_replacement(catalog, phases=())
        with pytest.raises(ConfigError):
            compare_replacement(catalog, migration_penalties=(-0.1,))
