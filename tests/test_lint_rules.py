"""Per-rule fixture tests for pocolint (repro.lint).

Each rule family has a bad fixture (every violation style it must
catch, asserted by exact line) and a good twin exercising the same
shapes legally (must produce zero findings).  The fixtures live in
``tests/lint_fixtures/`` and are linted *statically* — they are never
imported.
"""

import pathlib

import pytest

from repro.errors import LintError
from repro.lint import all_rules, get_rule, lint_file, lint_source

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def findings_for(name, rule_id):
    return lint_file(FIXTURES / name, rules=[get_rule(rule_id)])


def lines_of(findings):
    return [f.line for f in findings]


class TestRegistry:
    def test_nine_rule_families_registered(self):
        rules = all_rules()
        assert [r.rule_id for r in rules] == [
            "unit-mixing",
            "nondeterminism",
            "pool-closure",
            "exception-policy",
            "atomic-artifacts",
            "hand-rolled-tolerance",
            "unit-flow",
            "lane-safety",
            "determinism-taint",
        ]
        assert [r.code for r in rules] == [
            "POCO101",
            "POCO201",
            "POCO301",
            "POCO401",
            "POCO501",
            "POCO601",
            "POCO701",
            "POCO801",
            "POCO901",
        ]

    def test_whole_program_rules_require_project(self):
        by_id = {r.rule_id: r for r in all_rules()}
        assert by_id["unit-flow"].requires_project
        assert by_id["lane-safety"].requires_project is False
        assert by_id["determinism-taint"].requires_project
        assert by_id["unit-mixing"].requires_project is False

    def test_unknown_rule_raises_lint_error(self):
        with pytest.raises(LintError, match="unknown rule"):
            get_rule("no-such-rule")


class TestUnitMixing:
    def test_bad_fixture_all_violations_found(self):
        found = findings_for("units_bad.py", "unit-mixing")
        assert lines_of(found) == [5, 6, 7, 8, 9, 10]

    def test_finding_messages_name_both_units(self):
        found = findings_for("units_bad.py", "unit-mixing")
        by_line = {f.line: f.message for f in found}
        assert "mixes watts (idle_power_w) with joules" in by_line[5]
        assert "comparison mixes joules" in by_line[6]
        assert "augmented assignment" in by_line[9]
        assert "keyword argument power_cap_w= expects watts" in by_line[10]

    def test_good_twin_is_clean(self):
        assert findings_for("units_good.py", "unit-mixing") == []

    def test_watts_times_seconds_derives_joules(self):
        src = "energy_joules = power_w * duration_s\n"
        assert lint_source(src, rules=[get_rule("unit-mixing")]) == []

    def test_joules_over_seconds_derives_watts(self):
        src = "avg_w = energy_joules / duration_s\n"
        assert lint_source(src, rules=[get_rule("unit-mixing")]) == []

    def test_unknown_product_is_not_trusted(self):
        # rate_w_per_s is a compound rate, not seconds — its product
        # with anything must not inherit the other operand's unit.
        src = "drift_w = bias_w + rate_w_per_s * elapsed_s\n"
        assert lint_source(src, rules=[get_rule("unit-mixing")]) == []

    def test_paper_index_suffixes_are_not_units(self):
        src = "total = p_j + duration_s\nways = a_w + freq_ghz\n"
        assert lint_source(src, rules=[get_rule("unit-mixing")]) == []


class TestNondeterminism:
    def test_bad_fixture_all_violations_found(self):
        found = findings_for("determinism_bad.py", "nondeterminism")
        assert lines_of(found) == [11, 12, 13, 14, 15, 16, 17]

    def test_good_twin_is_clean(self):
        assert findings_for("determinism_good.py", "nondeterminism") == []

    def test_import_aliasing_is_resolved(self):
        src = (
            "from time import time as clock\n"
            "import numpy.random as nprand\n"
            "a = clock()\n"
            "b = nprand.rand(3)\n"
        )
        found = lint_source(src, rules=[get_rule("nondeterminism")])
        assert lines_of(found) == [3, 4]

    def test_seeded_calls_are_allowed(self):
        src = (
            "import numpy as np\n"
            "import random\n"
            "rng = np.random.default_rng(42)\n"
            "local = random.Random(7)\n"
        )
        assert lint_source(src, rules=[get_rule("nondeterminism")]) == []

    def test_generator_method_calls_are_not_confused_with_module(self):
        src = "draw = rng.random() + rng.normal()\n"
        assert lint_source(src, rules=[get_rule("nondeterminism")]) == []


class TestPoolClosure:
    def test_bad_fixture_all_violations_found(self):
        found = findings_for("parallel_bad.py", "pool-closure")
        assert lines_of(found) == [7, 12, 13, 19]

    def test_messages_distinguish_the_three_shapes(self):
        found = findings_for("parallel_bad.py", "pool-closure")
        by_line = {f.line: f.message for f in found}
        assert "lambda" in by_line[7]
        assert "nested function 'cell'" in by_line[12]
        assert "bound method self.one_cell" in by_line[19]

    def test_good_twin_is_clean(self):
        assert findings_for("parallel_good.py", "pool-closure") == []

    def test_partial_of_lambda_is_unwrapped(self):
        src = (
            "from functools import partial\n"
            "out = map_ordered(partial(lambda t: t, 1), tasks)\n"
        )
        found = lint_source(src, rules=[get_rule("pool-closure")])
        assert lines_of(found) == [2]

    def test_module_level_name_shadowing_nested_def_not_flagged(self):
        src = (
            "def cell(t):\n"
            "    return t\n"
            "def run(tasks):\n"
            "    def cell(t):\n"
            "        return t\n"
            "    return map_ordered(cell, tasks)\n"
        )
        # `cell` also exists at module level, so static resolution keeps
        # quiet rather than guessing which one the name binds to.
        assert lint_source(src, rules=[get_rule("pool-closure")]) == []


class TestExceptionPolicy:
    def test_bad_fixture_all_violations_found(self):
        found = findings_for("exceptions_bad.py", "exception-policy")
        assert lines_of(found) == [5, 7, 14, 21]

    def test_good_twin_is_clean(self):
        assert findings_for("exceptions_good.py", "exception-policy") == []

    def test_new_repro_error_subclasses_are_allowed_automatically(self):
        # The allowlist is introspected from repro.errors, so every
        # member of the hierarchy is known without a linter change.
        src = "from repro.errors import LintError\nraise LintError('x')\n"
        assert lint_source(src, rules=[get_rule("exception-policy")]) == []

    def test_reraising_caught_variable_is_allowed(self):
        src = (
            "try:\n"
            "    pass\n"
            "except ValueError as exc:\n"
            "    raise exc\n"
        )
        assert lint_source(src, rules=[get_rule("exception-policy")]) == []


class TestAtomicArtifacts:
    def test_bad_fixture_all_violations_found(self):
        found = findings_for("artifacts_bad.py", "atomic-artifacts")
        assert lines_of(found) == [5, 6, 7, 8, 9, 10]

    def test_messages_point_at_the_atomic_helper(self):
        found = findings_for("artifacts_bad.py", "atomic-artifacts")
        by_line = {f.line: f.message for f in found}
        assert "write_text()" in by_line[5]
        assert "write_bytes()" in by_line[6]
        assert "open(..., 'w')" in by_line[7]
        assert "open(..., 'a')" in by_line[8]
        assert "repro.runtime.atomic" in by_line[10]

    def test_good_twin_is_clean(self):
        assert findings_for("artifacts_good.py", "atomic-artifacts") == []

    def test_atomic_helper_module_is_allowlisted(self):
        src = "open('x.json', 'w')\n"
        assert lint_source(
            src,
            path="src/repro/runtime/atomic.py",
            rules=[get_rule("atomic-artifacts")],
        ) == []

    def test_dynamic_mode_is_not_guessed(self):
        src = "handle = open(path, mode)\n"
        assert lint_source(src, rules=[get_rule("atomic-artifacts")]) == []


class TestHandRolledTolerance:
    def test_bad_fixture_all_violations_found(self):
        found = findings_for("tolerances_bad.py", "hand-rolled-tolerance")
        assert lines_of(found) == [8, 9, 10, 11, 12, 13, 14]

    def test_messages_point_at_the_guard_vocabulary(self):
        found = findings_for("tolerances_bad.py", "hand-rolled-tolerance")
        by_line = {f.line: f.message for f in found}
        assert "repro.guard.tolerance" in by_line[8]
        assert "isclose() tolerance check" in by_line[12]
        assert "allclose() tolerance check" in by_line[14]

    def test_good_twin_is_clean(self):
        assert findings_for("tolerances_good.py", "hand-rolled-tolerance") == []

    def test_guard_package_is_exempt(self):
        src = "ok = abs(measured_w - cap_w) < tol\n"
        assert lint_source(
            src,
            path="src/repro/guard/tolerance.py",
            rules=[get_rule("hand-rolled-tolerance")],
        ) == []

    def test_unitless_abs_comparison_is_not_flagged(self):
        src = "close = abs(score_a - score_b) < 0.01\n"
        assert lint_source(src, rules=[get_rule("hand-rolled-tolerance")]) == []

    def test_hysteresis_threshold_is_not_flagged(self):
        # An actuation threshold is a controller decision, not a
        # hand-rolled equality tolerance (see docs/LINTING.md).
        src = "restore = filtered_w < cap_w - restore_margin_w\n"
        assert lint_source(src, rules=[get_rule("hand-rolled-tolerance")]) == []


class TestSuppression:
    def test_disable_comment_silences_one_rule(self):
        found = findings_for("suppressed.py", "nondeterminism")
        # Lines 7 and 11 are suppressed; line 17 must still fire, and
        # the string literal on line 16 must not act as a suppression.
        assert lines_of(found) == [17]

    def test_disable_must_name_the_right_rule(self):
        src = "import time\nt = time.time()  # pocolint: disable=unit-mixing\n"
        found = lint_source(src, rules=[get_rule("nondeterminism")])
        assert lines_of(found) == [2]


class TestLinterSelfCheck:
    def test_pocolint_is_clean_on_its_own_source(self):
        import repro.lint as lint_pkg

        pkg_dir = pathlib.Path(lint_pkg.__file__).parent
        from repro.lint import lint_paths

        assert lint_paths([pkg_dir]) == []
