"""Robustness and failure-injection tests.

The paper's control loops claim resilience to "load uncertainties and
model inaccuracies" (Section IV-C) — these tests inject exactly those
faults and check the system degrades gracefully instead of falling over:
wrong fitted models, biased power meters, heavy telemetry noise, and
violent load swings.
"""

import numpy as np
import pytest

from repro.core.server_manager import PowerOptimizedManager
from repro.hwmodel.capping import PowerCapController
from repro.hwmodel.meter import PowerMeter
from repro.sim.colocation import ColocationSim, SimConfig, build_colocated_server
from repro.workloads.traces import ConstantTrace, StepTrace


def build_sim(catalog, lc_name="xapian", be_name="rnn", model_name=None,
              trace=None, config=None):
    lc = catalog.lc_apps[lc_name]
    be = catalog.be_apps[be_name]
    server = build_colocated_server(
        catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(), be_app=be
    )
    model = catalog.lc_fits[model_name or lc_name].model
    manager = PowerOptimizedManager(server, model=model)
    return ColocationSim(
        server=server, lc_app=lc,
        trace=trace if trace is not None else ConstantTrace(0.5),
        manager=manager, be_app=be,
        config=config if config is not None else SimConfig(seed=0),
    )


class TestWrongModel:
    """POM handed another application's fitted model entirely."""

    @pytest.mark.parametrize("wrong", ["sphinx", "img-dnn", "tpcc"])
    def test_feedback_rescues_the_slo(self, catalog, wrong):
        sim = build_sim(catalog, lc_name="xapian", model_name=wrong)
        result = sim.run(duration_s=40.0)
        # The latency feedback (adaptive headroom) compensates for the
        # model's wrong capacity predictions; a few transient violations
        # are tolerable, sustained violation is not.
        assert result.slo_violation_fraction < 0.15

    def test_wrong_model_costs_efficiency_not_safety(self, catalog):
        right = build_sim(catalog).run(duration_s=40.0)
        wrong = build_sim(catalog, model_name="sphinx").run(duration_s=40.0)
        assert wrong.slo_violation_fraction < 0.15
        # With a wrong model the manager misjudges the cheap direction;
        # it should never *beat* the right model on BE throughput by a
        # meaningful margin.
        assert wrong.avg_be_throughput_norm <= right.avg_be_throughput_norm + 0.05


class TestBiasedPowerMeter:
    """A systematically wrong socket meter must fail safe, not unsafe."""

    def _run_capped(self, catalog, bias_w, seed=0):
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["graph"]
        server = build_colocated_server(
            catalog.spec, lc, provisioned_power_w=132.0, be_app=be
        )
        from repro.evaluation.motivation import true_min_power_allocation
        server.apply_allocation(lc.name, true_min_power_allocation(lc, 0.1))
        server.apply_allocation(be.name, server.spare_allocation())
        meter = PowerMeter(
            source=lambda: server.power_w() + bias_w,
            rng=np.random.default_rng(seed), noise_sigma_w=0.5,
        )
        capper = PowerCapController(server, meter)
        for k in range(400):
            capper.step(k * 0.1)
        return server, be

    def test_meter_reading_high_overthrottles_safely(self, catalog):
        server, be = self._run_capped(catalog, bias_w=+10.0)
        # True power ends up strictly below the cap (wasteful but safe).
        assert server.power_w() < server.provisioned_power_w

    def test_meter_reading_low_overshoots_by_at_most_the_bias(self, catalog):
        server, be = self._run_capped(catalog, bias_w=-10.0)
        # The loop believes it is at the cap; the true overshoot is
        # bounded by the meter bias.
        assert server.power_w() <= server.provisioned_power_w + 10.0 + 1.0

    def test_unbiased_reference(self, catalog):
        server, be = self._run_capped(catalog, bias_w=0.0)
        assert server.power_w() <= server.provisioned_power_w + 1.0


class TestHeavyTelemetryNoise:
    def test_slo_held_under_noisy_latency(self, catalog):
        config = SimConfig(seed=0, latency_noise=0.30, load_noise=0.10)
        result = build_sim(catalog, config=config).run(duration_s=40.0)
        assert result.slo_violation_fraction < 0.10

    def test_noise_costs_some_be_throughput(self, catalog):
        quiet = build_sim(catalog, config=SimConfig(seed=0)).run(duration_s=40.0)
        noisy = build_sim(
            catalog, config=SimConfig(seed=0, latency_noise=0.30, load_noise=0.10)
        ).run(duration_s=40.0)
        # Noise makes the controller conservative; it must not make it
        # reckless (more BE throughput at the SLO's expense).
        assert noisy.avg_be_throughput_norm <= quiet.avg_be_throughput_norm + 0.05


class TestLoadSwings:
    def test_square_wave_recovery(self, catalog):
        trace = StepTrace.of(
            (0.0, 0.2), (10.0, 0.9), (20.0, 0.2), (30.0, 0.9), (40.0, 0.2)
        )
        result = build_sim(catalog, trace=trace).run(duration_s=50.0)
        # Each upswing may cost a couple of violating seconds before the
        # controller reacts; sustained violation means broken recovery.
        assert result.slo_violation_fraction < 0.15
        # After the final drop, the BE app must be re-expanded.
        tput = result.telemetry.series("be_throughput_norm")
        tail = [v for t, v in zip(tput.times, tput.values) if t >= 45.0]
        assert max(tail) > 0.1

    def test_flash_crowd_from_idle(self, catalog):
        trace = StepTrace.of((0.0, 0.05), (20.0, 0.95))
        result = build_sim(catalog, trace=trace).run(duration_s=40.0)
        cores = result.telemetry.series("lc_cores")
        late = [v for t, v in zip(cores.times, cores.values) if t > 30.0]
        assert max(late) >= 10  # the primary reclaimed nearly everything
        assert result.slo_violation_fraction < 0.25


class TestDegenerateOperatingPoints:
    def test_zero_load_parks_primary_minimally(self, catalog):
        result = build_sim(catalog, trace=ConstantTrace(0.0)).run(duration_s=20.0)
        cores = result.telemetry.series("lc_cores")
        assert cores.values[-1] <= 2
        assert result.avg_be_throughput_norm > 0.5

    def test_sustained_peak_load_leaves_no_be_room(self, catalog):
        result = build_sim(catalog, trace=ConstantTrace(1.0)).run(duration_s=20.0)
        assert result.avg_be_throughput_norm < 0.10
        assert result.slo_violation_fraction < 0.30
