"""Tests for repro.apps.base: ground-truth surfaces and noise."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps.base import (
    ApplicationProfile,
    PerformanceSurface,
    PowerSurface,
    desaturate,
    measured,
    saturate,
)
from repro.errors import ConfigError
from repro.hwmodel.spec import Allocation


class TestSaturation:
    def test_fixed_points(self):
        assert saturate(0.0, 0.15) == 0.0
        assert saturate(1.0, 0.15) == pytest.approx(1.0)

    def test_concave_boost_for_small_x(self):
        assert saturate(0.1, 0.15) > 0.1

    def test_kappa_zero_is_identity(self):
        for x in (0.0, 0.3, 0.7, 1.0):
            assert saturate(x, 0.0) == pytest.approx(x)

    def test_negative_kappa_rejected(self):
        with pytest.raises(ConfigError):
            saturate(0.5, -0.1)
        with pytest.raises(ConfigError):
            desaturate(0.5, -0.1)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=2.0))
    def test_desaturate_inverts_saturate(self, x, kappa):
        assert desaturate(saturate(x, kappa), kappa) == pytest.approx(x, abs=1e-9)

    @given(st.floats(min_value=0.001, max_value=0.999),
           st.floats(min_value=0.01, max_value=1.0))
    def test_saturate_monotone(self, x, kappa):
        assert saturate(x + 0.001, kappa) > saturate(x, kappa)


class TestPerformanceSurface:
    @pytest.fixture()
    def surface(self):
        return PerformanceSurface(alpha_cores=0.6, alpha_ways=0.4, alpha_freq=0.8)

    def test_full_allocation_is_one(self, surface, spec):
        assert surface.normalized(spec.full_allocation(), spec) == pytest.approx(1.0)

    def test_empty_allocation_is_zero(self, surface, spec):
        assert surface.normalized(Allocation.empty(), spec) == 0.0

    def test_monotone_in_cores(self, surface, spec):
        lo = surface.normalized(Allocation(cores=3, ways=10), spec)
        hi = surface.normalized(Allocation(cores=6, ways=10), spec)
        assert hi > lo

    def test_monotone_in_ways(self, surface, spec):
        lo = surface.normalized(Allocation(cores=6, ways=5), spec)
        hi = surface.normalized(Allocation(cores=6, ways=10), spec)
        assert hi > lo

    def test_frequency_scales_performance(self, surface, spec):
        full = Allocation(cores=6, ways=10, freq_ghz=2.2)
        slow = Allocation(cores=6, ways=10, freq_ghz=1.2)
        ratio = surface.normalized(slow, spec) / surface.normalized(full, spec)
        assert ratio == pytest.approx((1.2 / 2.2) ** 0.8)

    def test_duty_cycle_scales_linearly(self, surface, spec):
        alloc = Allocation(cores=6, ways=10)
        half = alloc.with_duty_cycle(0.5)
        assert surface.normalized(half, spec) == pytest.approx(
            0.5 * surface.normalized(alloc, spec)
        )

    def test_invalid_elasticities_rejected(self):
        with pytest.raises(ConfigError):
            PerformanceSurface(alpha_cores=0.0, alpha_ways=0.4, alpha_freq=0.5)
        with pytest.raises(ConfigError):
            PerformanceSurface(alpha_cores=0.4, alpha_ways=0.4, alpha_freq=-0.5)


class TestPowerSurface:
    @pytest.fixture()
    def surface(self):
        return PowerSurface(p_core_w=4.0, p_way_w=2.0, static_w=5.0)

    def test_additive_at_max_frequency(self, surface, spec):
        alloc = Allocation(cores=3, ways=4)
        assert surface.active_power_w(alloc, spec) == pytest.approx(
            5.0 + 3 * 4.0 + 4 * 2.0
        )

    def test_empty_draws_nothing(self, surface, spec):
        assert surface.active_power_w(Allocation.empty(), spec) == 0.0

    def test_core_power_scales_superlinearly_with_freq(self, surface, spec):
        hi = surface.active_power_w(Allocation(cores=6, ways=1), spec)
        lo = surface.active_power_w(Allocation(cores=6, ways=1, freq_ghz=1.2), spec)
        phi = 1.2 / 2.2
        # core part scales with phi^2.2, way part with 0.3 + 0.7*phi
        expected = 5.0 + 24.0 * phi ** 2.2 + 2.0 * (0.3 + 0.7 * phi)
        assert lo == pytest.approx(expected)
        assert lo < hi

    def test_duty_cycle_not_applied_here(self, surface, spec):
        alloc = Allocation(cores=3, ways=4)
        assert surface.active_power_w(
            alloc.with_duty_cycle(0.5), spec
        ) == surface.active_power_w(alloc, spec)

    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ConfigError):
            PowerSurface(p_core_w=-1.0, p_way_w=1.0)
        with pytest.raises(ConfigError):
            PowerSurface(p_core_w=1.0, p_way_w=1.0, way_static_share=1.5)


class TestApplicationProfile:
    def test_server_power_includes_idle(self, xapian, spec):
        alloc = Allocation(cores=2, ways=3)
        assert xapian.profile.server_power_w(alloc) == pytest.approx(
            spec.idle_power_w + xapian.profile.active_power_w(alloc)
        )

    def test_true_preference_ratio_matches_catalog(self, xapian):
        # xapian is calibrated to indirect preferences 0.30 : 0.70
        ratio = xapian.profile.true_preference_ratio()
        share = ratio / (1.0 + ratio)
        assert share == pytest.approx(0.30, abs=0.01)


class TestMeasuredNoise:
    def test_none_rng_passthrough(self):
        assert measured(5.0, None, 0.1) == 5.0

    def test_zero_sigma_passthrough(self, rng):
        assert measured(5.0, rng, 0.0) == 5.0

    def test_nonpositive_value_passthrough(self, rng):
        assert measured(0.0, rng, 0.1) == 0.0
        assert measured(-3.0, rng, 0.1) == -3.0

    def test_noise_is_multiplicative_and_unbiased_in_log(self):
        rng = np.random.default_rng(0)
        samples = [measured(10.0, rng, 0.1) for _ in range(2000)]
        assert abs(np.mean(np.log(samples)) - np.log(10.0)) < 0.01
        assert all(s > 0 for s in samples)
