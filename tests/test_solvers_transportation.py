"""Tests for repro.solvers.transportation and fleet-scale placement."""

import numpy as np
import pytest

from repro.core.placement import fleet_placement
from repro.errors import ConfigError, SolverError
from repro.solvers.transportation import (
    greedy_transportation_max,
    solve_transportation_max,
)


class TestSolveTransportation:
    def test_known_instance(self):
        value = [[5.0, 1.0], [1.0, 4.0]]
        plan = solve_transportation_max(value, supply=[2, 3], capacity=[3, 3])
        # Stream 0 entirely on cluster 0, stream 1 entirely on cluster 1.
        assert plan.flows[0, 0] == 2 and plan.flows[1, 1] == 3
        assert plan.total_value == pytest.approx(2 * 5.0 + 3 * 4.0)

    def test_capacity_forces_spill(self):
        value = [[5.0, 1.0]]
        plan = solve_transportation_max(value, supply=[4], capacity=[3, 3])
        assert plan.flows[0, 0] == 3
        assert plan.flows[0, 1] == 1
        assert plan.total_value == pytest.approx(16.0)

    def test_supply_met_exactly(self):
        rng = np.random.default_rng(0)
        value = rng.uniform(0.1, 1.0, size=(3, 4))
        supply = [5, 7, 2]
        capacity = [4, 4, 4, 4]
        plan = solve_transportation_max(value, supply, capacity)
        assert list(plan.flows.sum(axis=1)) == supply
        assert all(plan.flows.sum(axis=0) <= capacity)

    def test_reduces_to_assignment_when_unit(self):
        from repro.solvers.hungarian import solve_assignment_max

        rng = np.random.default_rng(2)
        value = rng.normal(size=(4, 4)) + 5.0
        plan = solve_transportation_max(value, [1] * 4, [1] * 4)
        _, assignment_total = solve_assignment_max(value)
        assert plan.total_value == pytest.approx(assignment_total)

    def test_lp_at_least_greedy(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            value = rng.uniform(0.0, 1.0, size=(3, 3))
            supply = list(rng.integers(1, 5, size=3))
            capacity = list(rng.integers(3, 7, size=3))
            if sum(supply) > sum(capacity):
                continue
            lp = solve_transportation_max(value, supply, capacity)
            greedy = greedy_transportation_max(value, supply, capacity)
            assert lp.total_value >= greedy.total_value - 1e-9

    def test_greedy_suboptimal_on_trap(self):
        # Greedy takes (0,0)=10 first, forcing stream 1 onto the bad cell.
        value = [[10.0, 9.0], [9.0, 1.0]]
        lp = solve_transportation_max(value, [1, 1], [1, 1])
        greedy = greedy_transportation_max(value, [1, 1], [1, 1])
        assert greedy.total_value == pytest.approx(11.0)
        assert lp.total_value == pytest.approx(18.0)

    def test_servers_for_accessor(self):
        plan = solve_transportation_max([[1.0, 2.0]], supply=[3], capacity=[2, 2])
        assert plan.servers_for(0) == 3

    def test_validation(self):
        with pytest.raises(SolverError):
            solve_transportation_max([[1.0]], supply=[2], capacity=[1])
        with pytest.raises(SolverError):
            solve_transportation_max([[1.0]], supply=[1, 2], capacity=[1])
        with pytest.raises(SolverError):
            solve_transportation_max([[float("nan")]], supply=[1], capacity=[1])
        with pytest.raises(SolverError):
            solve_transportation_max(np.zeros((0, 0)), supply=[], capacity=[])
        with pytest.raises(SolverError):
            solve_transportation_max([[1.0]], supply=[-1], capacity=[1])


class TestFleetPlacement:
    @pytest.fixture()
    def matrix(self, catalog):
        return catalog.performance_matrix()

    def test_respects_demands_and_capacities(self, matrix):
        demands = {"lstm": 10, "rnn": 5, "graph": 8, "pbzip": 7}
        capacities = {"img-dnn": 12, "sphinx": 8, "xapian": 6, "tpcc": 6}
        plan = fleet_placement(matrix, demands, capacities)
        for be, want in demands.items():
            assert sum(plan.servers(be, lc) for lc in plan.lc_names) == want
        for lc, cap in capacities.items():
            assert sum(plan.servers(be, lc) for be in plan.be_names) <= cap

    def test_unit_fleet_matches_assignment(self, matrix, catalog):
        from repro.core.placement import pocolo_placement

        unit = {name: 1 for name in matrix.be_names}
        caps = {name: 1 for name in matrix.lc_names}
        plan = fleet_placement(matrix, unit, caps)
        decision = pocolo_placement(matrix)
        assert plan.predicted_total == pytest.approx(decision.predicted_total)
        for be, lc in decision.mapping.items():
            assert plan.servers(be, lc) == 1

    def test_uncontended_stream_takes_its_best_column(self, matrix):
        # Zero-demand streams are allowed: they just ship nothing, and
        # the only real stream goes entirely to its best predicted home.
        demands = {"lstm": 0, "rnn": 0, "graph": 5, "pbzip": 0}
        capacities = {"img-dnn": 5, "sphinx": 5, "xapian": 5, "tpcc": 5}
        plan = fleet_placement(matrix, demands, capacities)
        best_lc = max(matrix.lc_names, key=lambda lc: matrix.cell("graph", lc))
        assert plan.servers("graph", best_lc) == 5

    def test_lp_beats_greedy(self, matrix):
        demands = {"lstm": 30, "rnn": 20, "graph": 25, "pbzip": 15}
        capacities = {"img-dnn": 40, "sphinx": 30, "xapian": 20, "tpcc": 20}
        lp = fleet_placement(matrix, demands, capacities, method="lp")
        greedy = fleet_placement(matrix, demands, capacities, method="greedy")
        assert lp.predicted_total >= greedy.predicted_total - 1e-9

    def test_validation(self, matrix):
        with pytest.raises(ConfigError):
            fleet_placement(matrix, {"lstm": 1}, {"img-dnn": 1})
        demands = {name: 1 for name in matrix.be_names}
        caps = {name: 1 for name in matrix.lc_names}
        with pytest.raises(ConfigError):
            fleet_placement(matrix, demands, caps, method="quantum")
