"""Whole-program pocolint v2: graph, dataflow, POCO701/801/901 fixtures.

The multi-module fixture *packages* under ``tests/lint_fixtures/`` are
linted statically (never imported); the bad packages assert exact
``file:line`` expectations for every planted violation, and each good
twin runs the same shapes legally and must stay silent.
"""

import pathlib

from repro.lint import get_rule, lint_file, lint_paths, lint_source
from repro.lint.graph import Project, module_name_for_path
from repro.lint.core import LintContext

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"


def package_findings(pkg, rule_id):
    return lint_paths([FIXTURES / pkg], rules=[get_rule(rule_id)], root=FIXTURES)


def located(findings):
    return [(f.path, f.line) for f in findings]


class TestProjectGraph:
    def test_module_name_for_path(self):
        assert module_name_for_path("src/repro/lint/core.py") == (
            "src.repro.lint.core"
        )
        assert module_name_for_path("pkg/__init__.py") == "pkg"

    def test_suffix_resolution_crosses_modules(self):
        ctx_a = LintContext.from_source(
            "def helper():\n    return 1\n", "proj/util.py"
        )
        ctx_b = LintContext.from_source(
            "from proj.util import helper\n\n"
            "def caller():\n    return helper()\n",
            "proj/main.py",
        )
        project = Project.from_contexts([ctx_a, ctx_b])
        table = project.modules["proj.main"]
        resolved = project.resolve_name(table, "helper")
        assert resolved is not None
        assert resolved.qualname == "proj.util.helper"
        assert project.call_graph["proj.main.caller"] == (
            "proj.util.helper",
        )

    def test_ambiguous_suffix_resolves_to_nothing(self):
        contexts = [
            LintContext.from_source("def f():\n    pass\n", "a/util.py"),
            LintContext.from_source("def f():\n    pass\n", "b/util.py"),
        ]
        project = Project.from_contexts(contexts)
        assert project.module_for_suffix("util") is None

    def test_self_method_resolution(self):
        ctx = LintContext.from_source(
            "class C:\n"
            "    def a(self):\n"
            "        return self.b()\n"
            "    def b(self):\n"
            "        return 1\n",
            "m.py",
        )
        project = Project.from_contexts([ctx])
        assert project.call_graph["m.C.a"] == ("m.C.b",)


class TestUnitFlow:
    def test_bad_package_exact_locations(self):
        found = package_findings("unitflow_bad", "unit-flow")
        assert located(found) == [
            ("unitflow_bad/controller.py", 13),
            ("unitflow_bad/controller.py", 18),
            ("unitflow_bad/controller.py", 23),
            ("unitflow_bad/controller.py", 27),
        ]

    def test_cross_module_evidence_names_the_callee(self):
        found = package_findings("unitflow_bad", "unit-flow")
        by_line = {f.line: f.message for f in found}
        assert "binds joules to budget_w (expects watts)" in by_line[13]
        assert (
            "value returned by stored_energy() defined at "
            "unitflow_bad/convert.py:17"
        ) in by_line[18]
        assert "suffix-typed as joules but this return produces watts" in (
            by_line[23]
        )
        assert (
            "parameter cap_w= of sink_power() expects watts but receives "
            "seconds (callee defined at unitflow_bad/convert.py:13)"
        ) in by_line[27]

    def test_good_twin_is_clean(self):
        assert package_findings("unitflow_good", "unit-flow") == []

    def test_does_not_duplicate_poco101_jurisdiction(self):
        # Both sides syntactically suffixed: POCO101's finding, not 701's.
        src = "def f(power_w):\n    total_j = power_w\n    return total_j\n"
        assert lint_source(src, rules=[get_rule("unit-flow")]) == []
        assert len(lint_source(src, rules=[get_rule("unit-mixing")])) == 1

    def test_unit_agreement_survives_branch_join(self):
        src = (
            "def f(cond, left_j, right_j):\n"
            "    if cond:\n"
            "        acc = left_j\n"
            "    else:\n"
            "        acc = right_j\n"
            "    cap_w = acc\n"
            "    return cap_w\n"
        )
        found = lint_source(src, rules=[get_rule("unit-flow")])
        assert [f.line for f in found] == [6]

    def test_conflicting_branches_stay_silent(self):
        # joules on one arm, watts on the other: the join is unknown, and
        # an unknown value must produce no finding (precision over recall).
        src = (
            "def f(cond, left_j, right_w):\n"
            "    if cond:\n"
            "        acc = left_j\n"
            "    else:\n"
            "        acc = right_w\n"
            "    cap_w = acc\n"
            "    return cap_w\n"
        )
        assert lint_source(src, rules=[get_rule("unit-flow")]) == []


class TestLaneSafety:
    def test_bad_package_exact_locations(self):
        found = package_findings("lane_bad", "lane-safety")
        assert located(found) == [
            ("lane_bad/kernel.py", 11),
            ("lane_bad/kernel.py", 18),
            ("lane_bad/kernel.py", 25),
            ("lane_bad/kernel.py", 30),
            ("lane_bad/kernel.py", 35),
            ("lane_bad/kernel.py", 40),
            ("lane_bad/kernel.py", 46),
            ("lane_bad/state.py", 15),
            ("lane_bad/state.py", 20),
        ]

    def test_messages_name_the_base_array(self):
        found = package_findings("lane_bad", "lane-safety")
        by_loc = {(f.path, f.line): f.message for f in found}
        assert "view of lane array power" in by_loc[("lane_bad/kernel.py", 11)]
        assert "out= argument" in by_loc[("lane_bad/kernel.py", 25)]
        assert "dtype=float32" in by_loc[("lane_bad/kernel.py", 30)]
        assert "implicit int64" in by_loc[("lane_bad/kernel.py", 40)]
        assert "_np_mean_lanes" in by_loc[("lane_bad/kernel.py", 46)]
        assert "self.power" in by_loc[("lane_bad/state.py", 15)]

    def test_good_twin_is_clean(self):
        assert package_findings("lane_good", "lane-safety") == []

    def test_rule_is_gated_on_the_directive(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    a = np.zeros(n)\n"
            "    v = a[::2]\n"
            "    v += 1.0\n"
        )
        assert lint_source(src, rules=[get_rule("lane-safety")]) == []
        directive = "# pocolint: lane-module\n" + src
        assert len(lint_source(directive, rules=[get_rule("lane-safety")])) == 1

    def test_planted_bug_in_real_kernel_copy(self):
        found = lint_file(
            FIXTURES / "lane_regression.py",
            rules=[get_rule("lane-safety")],
            root=FIXTURES,
        )
        assert located(found) == [("lane_regression.py", 54)]
        assert "mutates a view of lane array ticks" in found[0].message

    def test_live_engine_modules_declare_and_pass(self):
        repo_src = pathlib.Path(__file__).parent.parent / "src"
        for name in ("batched.py", "vectorized.py"):
            path = repo_src / "repro" / "engine" / name
            text = path.read_text(encoding="utf-8")
            assert "# pocolint: lane-module" in text
            assert (
                lint_file(path, rules=[get_rule("lane-safety")]) == []
            )


class TestDeterminismTaint:
    def test_bad_package_exact_locations(self):
        found = package_findings("taint_bad", "determinism-taint")
        assert located(found) == [
            ("taint_bad/writer.py", 13),
            ("taint_bad/writer.py", 18),
            ("taint_bad/writer.py", 23),
            ("taint_bad/writer.py", 28),
            ("taint_bad/writer.py", 34),
        ]

    def test_evidence_chains_cross_the_module_boundary(self):
        found = package_findings("taint_bad", "determinism-taint")
        by_line = {f.line: f.message for f in found}
        # clock -> telemetry, with the source anchored in the other module
        assert "time.time() (taint_bad/sources.py:7)" in by_line[13]
        assert "return of stamp()" in by_line[13]
        # env -> checkpoint
        assert "os.environ[...]" in by_line[18]
        assert "Checkpoint payload" in by_line[18]
        # set order -> ledger
        assert "hash-randomized order" in by_line[23]
        assert "guard violation ledger" in by_line[23]
        # unseeded rng -> pickled worker args
        assert "unseeded np.random.default_rng()" in by_line[28]
        # global rng -> export_state return
        assert "export_state() return carries" in by_line[34]

    def test_good_twin_is_clean(self):
        assert package_findings("taint_good", "determinism-taint") == []

    def test_sorted_cleanses_order_taint(self):
        src = (
            "def f(ledger_path):\n"
            "    rows = sorted({'a', 'b'})\n"
            "    write_ledger(ledger_path, rows)\n"
        )
        assert lint_source(src, rules=[get_rule("determinism-taint")]) == []

    def test_len_of_nondeterministic_value_is_clean(self):
        src = (
            "import os\n"
            "def f(telemetry, sim_time_s):\n"
            "    n = len(os.environ['X'])\n"
            "    telemetry.record('n', sim_time_s, n)\n"
        )
        assert lint_source(src, rules=[get_rule("determinism-taint")]) == []

    def test_source_without_sink_is_silent(self):
        # POCO901 only fires at sinks; loose clocks are POCO201's job.
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(src, rules=[get_rule("determinism-taint")]) == []

    def test_param_flow_reports_at_the_caller(self):
        # `route` sinks its parameter; the *caller* feeding it a clock is
        # the site that gets flagged, with the routed-sink evidence.
        src = (
            "import time\n"
            "def route(telemetry, value):\n"
            "    telemetry.record('v', 0.0, value)\n"
            "def caller(telemetry):\n"
            "    route(telemetry, time.time())\n"
        )
        found = lint_source(src, rules=[get_rule("determinism-taint")])
        lines = sorted(f.line for f in found)
        assert 5 in lines
        routed = [f for f in found if f.line == 5]
        assert "inside route()" in routed[0].message
