"""Unit tests for the runtime safety invariants and the guard monitor.

Each invariant is exercised in isolation against hand-built
:class:`GuardSample` snapshots — both the healthy path (no violation)
and a planted breach — and the monitor's record/enforce split is pinned:
record accumulates (capped), enforce raises
:class:`~repro.errors.InvariantViolationError` on the first hit.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigError, InvariantViolationError
from repro.faults import FaultSchedule, MeterDrift
from repro.guard.invariants import (
    BudgetConservationInvariant,
    EnergyConservationInvariant,
    GuardConfig,
    GuardReport,
    GuardSample,
    InvariantRegistry,
    LcSloFloorInvariant,
    MonotonicTimeInvariant,
    PowerCapInvariant,
    RngIsolationInvariant,
    Violation,
)
from repro.guard.monitor import GuardMonitor
from repro.hwmodel import Allocation
from repro.sim.colocation import build_colocated_server

#: Evaluate every invariant every tick — unit tests want exact timing.
EVERY_TICK = GuardConfig(deep_check_every=1)


@pytest.fixture()
def server(spec, lc_apps, be_apps):
    """A colocated xapian+rnn server in the post-assembly safe state."""
    lc = lc_apps["xapian"]
    box = build_colocated_server(
        spec=spec,
        lc_app=lc,
        provisioned_power_w=lc.peak_server_power_w(),
        be_app=be_apps["rnn"],
    )
    # Give the BE tenant a real slice so both tenants hold resources.
    box.apply_allocation(lc.name, Allocation(cores=8, ways=14))
    box.apply_allocation("rnn", Allocation(cores=4, ways=6))
    return box


def sample_at(server, time_s=1.0, power_w=None, capper=None, faults=None,
              in_window=True, final=False):
    """A GuardSample over ``server`` with stubbed capper/manager."""
    return GuardSample(
        time_s=time_s,
        in_window=in_window,
        power_w=server.power_w() if power_w is None else power_w,
        server=server,
        capper=capper if capper is not None else SimpleNamespace(safe_mode=False),
        manager=SimpleNamespace(),
        faults=faults,
        rng=np.random.default_rng(0),
        final=final,
    )


class TestGuardConfig:
    def test_defaults_are_record_mode(self):
        config = GuardConfig()
        assert config.mode == "record"
        assert not config.enforcing
        assert GuardConfig(mode="enforce").enforcing

    @pytest.mark.parametrize("kwargs", [
        {"mode": "observe"},
        {"cap_grace_steps": -1},
        {"energy_abs_tol_w": -1e-9},
        {"energy_rel_tol": -1e-9},
        {"lc_min_cores": 0},
        {"lc_min_ways": 0},
        {"max_violations": 0},
        {"deep_check_every": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GuardConfig(**kwargs)

    def test_hashable_and_comparable(self):
        # The config rides inside cell-dedupe keys and checkpoint run
        # keys, so value semantics are load-bearing.
        assert GuardConfig() == GuardConfig()
        assert hash(GuardConfig()) == hash(GuardConfig())
        assert GuardConfig() != GuardConfig(cap_margin_w=5.0)


class TestReportTypes:
    def test_violation_render_names_invariant_and_clock(self):
        violation = Violation(
            invariant="power-cap", time_s=3.5, message="over the envelope",
            observed=160.0, limit=157.0,
        )
        text = violation.render()
        assert "[power-cap]" in text and "t=3.5s" in text
        assert "160" in text and "157" in text

    def test_report_clean_truncated_and_count(self):
        v = Violation("power-cap", 1.0, "m", 1.0, 0.0)
        report = GuardReport(mode="record", checks=60, total_violations=5,
                             violations=(v, v))
        assert not report.clean
        assert report.truncated
        assert report.count("power-cap") == 2
        assert report.count("monotonic-time") == 0
        assert GuardReport("record", 60, 0, ()).clean


class TestPowerCapInvariant:
    def test_draw_inside_envelope_is_clean(self, server):
        inv = PowerCapInvariant(EVERY_TICK)
        cap = server.provisioned_power_w
        for _ in range(10):
            assert inv.observe(sample_at(server, power_w=cap - 5.0)) is None

    def test_excursion_beyond_grace_fires(self, server):
        inv = PowerCapInvariant(EVERY_TICK)
        over = server.provisioned_power_w + 10.0
        for _ in range(EVERY_TICK.cap_grace_steps):
            assert inv.observe(sample_at(server, power_w=over)) is None
        violation = inv.observe(sample_at(server, power_w=over))
        assert violation is not None
        assert violation.invariant == "power-cap"
        assert violation.observed == pytest.approx(over)

    def test_recovery_resets_the_streak(self, server):
        inv = PowerCapInvariant(EVERY_TICK)
        over = server.provisioned_power_w + 10.0
        for _ in range(EVERY_TICK.cap_grace_steps):
            assert inv.observe(sample_at(server, power_w=over)) is None
        # One in-envelope tick forgives the streak entirely.
        assert inv.observe(sample_at(server, power_w=1.0)) is None
        for _ in range(EVERY_TICK.cap_grace_steps):
            assert inv.observe(sample_at(server, power_w=over)) is None

    def test_warmup_ticks_are_ignored(self, server):
        inv = PowerCapInvariant(EVERY_TICK)
        over = server.provisioned_power_w + 50.0
        for _ in range(10):
            assert inv.observe(
                sample_at(server, power_w=over, in_window=False)
            ) is None

    def test_negative_drift_bias_is_excused(self, server):
        # A meter under-reporting by b watts makes cap+b look on-cap:
        # during the window the controller cannot see the excursion.
        faults = FaultSchedule([
            MeterDrift(start_s=0.0, duration_s=100.0, rate_w_per_s=-2.0)
        ])
        drift_bias = 2.0 * 10.0  # at t=10s
        over = server.provisioned_power_w + EVERY_TICK.cap_margin_w / 2.0
        inv = PowerCapInvariant(EVERY_TICK)
        for _ in range(10):
            assert inv.observe(sample_at(
                server, time_s=10.0, power_w=over + drift_bias, faults=faults,
            )) is None
        # The same draw with no drift active is a genuine excursion.
        blamed = PowerCapInvariant(EVERY_TICK)
        hits = [blamed.observe(sample_at(server, power_w=over + drift_bias))
                for _ in range(EVERY_TICK.cap_grace_steps + 1)]
        assert hits[-1] is not None

    def test_safe_mode_excuses_the_floored_be_draw(self, server):
        safe = SimpleNamespace(safe_mode=True)
        be_draw = sum(
            server.tenant_power_w(name) for name in server.secondary_tenants()
        )
        assert be_draw > 0.0
        over = server.provisioned_power_w + be_draw
        inv = PowerCapInvariant(EVERY_TICK)
        for _ in range(10):
            assert inv.observe(
                sample_at(server, power_w=over, capper=safe)
            ) is None


class TestEnergyConservationInvariant:
    def test_noiseless_attribution_conserves(self, server):
        inv = EnergyConservationInvariant(EVERY_TICK)
        for _ in range(5):
            assert inv.observe(sample_at(server)) is None

    def test_accounting_gap_fires(self, server):
        inv = EnergyConservationInvariant(EVERY_TICK)
        bogus = server.power_w() + 7.0
        violation = inv.observe(sample_at(server, power_w=bogus))
        assert violation is not None
        assert violation.invariant == "energy-conservation"
        assert violation.observed == pytest.approx(7.0)

    def test_deep_check_stride_skips_between_anchors(self, server):
        config = GuardConfig(deep_check_every=4)
        inv = EnergyConservationInvariant(config)
        bogus = server.power_w() + 7.0
        hits = [inv.observe(sample_at(server, power_w=bogus))
                for _ in range(8)]
        # Ticks 0 and 4 check (and fire); the strided ticks pass.
        assert [h is not None for h in hits] == [
            True, False, False, False, True, False, False, False,
        ]

    def test_final_tick_checks_despite_stride(self, server):
        """Regression: a cell shorter than the stride still gets its
        cumulative check — the final sample always evaluates."""
        config = GuardConfig(deep_check_every=100)
        inv = EnergyConservationInvariant(config)
        bogus = server.power_w() + 7.0
        assert inv.observe(sample_at(server, power_w=bogus)) is not None
        for _ in range(3):
            assert inv.observe(sample_at(server, power_w=bogus)) is None
        violation = inv.observe(
            sample_at(server, power_w=bogus, final=True)
        )
        assert violation is not None
        assert violation.invariant == "energy-conservation"

    def test_final_tick_rng_check_despite_stride(self, server):
        """Same regression for the other strided (cumulative) check."""
        config = GuardConfig(deep_check_every=100)
        inv = RngIsolationInvariant(config)
        assert inv.observe(sample_at(server)) is None  # baselines
        np.random.random()  # pocolint: disable=nondeterminism
        for _ in range(3):
            assert inv.observe(sample_at(server)) is None
        violation = inv.observe(sample_at(server, final=True))
        assert violation is not None
        assert violation.invariant == "rng-isolation"


class TestLcSloFloorInvariant:
    def test_healthy_primary_passes(self, server):
        assert LcSloFloorInvariant(EVERY_TICK).observe(sample_at(server)) is None

    def test_missing_primary_fires(self, server):
        server.detach("xapian")
        violation = LcSloFloorInvariant(EVERY_TICK).observe(sample_at(server))
        assert violation is not None
        assert "primary" in violation.message

    def test_starved_core_floor_fires(self, server):
        config = GuardConfig(deep_check_every=1,
                             lc_min_cores=server.spec.cores + 1)
        violation = LcSloFloorInvariant(config).observe(sample_at(server))
        assert violation is not None
        assert "core floor" in violation.message

    def test_duty_cycled_primary_fires(self, server):
        server.apply_allocation(
            "xapian", Allocation(cores=8, ways=14, duty_cycle=0.8)
        )
        violation = LcSloFloorInvariant(EVERY_TICK).observe(sample_at(server))
        assert violation is not None
        assert "duty-cycled" in violation.message


class _FakeAllocServer:
    """Duck-typed server whose allocations bypass apply-time validation.

    The real :meth:`Server.apply_allocation` refuses oversubscription, so
    a budget breach can only come from a bookkeeping bug; this stub lets
    the test plant one.
    """

    def __init__(self, spec, allocations, provisioned_power_w=150.0):
        self.spec = spec
        self.provisioned_power_w = provisioned_power_w
        self._allocations = allocations

    def tenants(self):
        return tuple(self._allocations)

    def allocation_of(self, tenant):
        return self._allocations[tenant]


class TestBudgetConservationInvariant:
    def test_real_server_never_oversubscribes(self, server):
        inv = BudgetConservationInvariant(EVERY_TICK)
        assert inv.observe(sample_at(server)) is None

    def test_core_oversubscription_fires(self, spec):
        fake = _FakeAllocServer(spec, {
            "a": Allocation(cores=spec.cores, ways=10),
            "b": Allocation(cores=2, ways=2),
        })
        violation = BudgetConservationInvariant(EVERY_TICK).observe(
            sample_at(fake, power_w=100.0)
        )
        assert violation is not None
        assert "oversubscribe the socket" in violation.message

    def test_off_ladder_frequency_fires(self, spec):
        fake = _FakeAllocServer(spec, {
            "a": Allocation(cores=2, ways=2, freq_ghz=99.0),
        })
        violation = BudgetConservationInvariant(EVERY_TICK).observe(
            sample_at(fake, power_w=100.0)
        )
        assert violation is not None
        assert "DVFS ladder" in violation.message


class TestMonotonicTimeInvariant:
    def test_advancing_clock_passes(self, server):
        inv = MonotonicTimeInvariant(EVERY_TICK)
        for t in (0.1, 0.2, 0.3):
            assert inv.observe(sample_at(server, time_s=t)) is None

    def test_stalled_clock_fires(self, server):
        inv = MonotonicTimeInvariant(EVERY_TICK)
        assert inv.observe(sample_at(server, time_s=1.0)) is None
        violation = inv.observe(sample_at(server, time_s=1.0))
        assert violation is not None
        assert violation.invariant == "monotonic-time"


class TestRngIsolationInvariant:
    def test_stray_global_draw_is_caught_then_rebaselined(self, server):
        inv = RngIsolationInvariant(EVERY_TICK)
        assert inv.observe(sample_at(server)) is None  # baseline tick
        np.random.random()  # pocolint: disable=nondeterminism
        violation = inv.observe(sample_at(server))
        assert violation is not None
        assert "global legacy RNG" in violation.message
        # One stray draw reports once; the next tick is clean again.
        assert inv.observe(sample_at(server)) is None

    def test_seeded_generators_never_trip_it(self, server, rng):
        inv = RngIsolationInvariant(EVERY_TICK)
        assert inv.observe(sample_at(server)) is None
        rng.random(100)
        assert inv.observe(sample_at(server)) is None

    def test_check_rng_false_disables_the_invariant(self, server):
        inv = RngIsolationInvariant(GuardConfig(check_rng=False,
                                                deep_check_every=1))
        assert inv.observe(sample_at(server)) is None
        np.random.random()  # pocolint: disable=nondeterminism
        assert inv.observe(sample_at(server)) is None


class TestRegistryAndMonitor:
    def test_default_registry_order(self):
        names = InvariantRegistry.default(GuardConfig()).names()
        assert names == (
            "power-cap", "energy-conservation", "lc-slo-floor",
            "budget-conservation", "monotonic-time", "rng-isolation",
        )

    def test_record_mode_accumulates_capped(self, server):
        config = GuardConfig(max_violations=2, deep_check_every=1)
        monitor = GuardMonitor(
            config, InvariantRegistry([MonotonicTimeInvariant(config)])
        )
        for _ in range(5):
            monitor.observe(sample_at(server, time_s=1.0))
        report = monitor.report()
        assert report.total_violations == 4  # first tick sets the baseline
        assert len(report.violations) == 2  # capped
        assert report.truncated
        assert report.checks == 5

    def test_enforce_mode_raises_on_first_violation(self, server):
        config = GuardConfig(mode="enforce", deep_check_every=1)
        monitor = GuardMonitor(
            config, InvariantRegistry([MonotonicTimeInvariant(config)])
        )
        monitor.observe(sample_at(server, time_s=1.0))
        with pytest.raises(InvariantViolationError, match="monotonic-time"):
            monitor.observe(sample_at(server, time_s=1.0))
        # The violation is also recorded, so post-mortems see it.
        assert monitor.report().total_violations == 1
