"""Tests for repro.analysis.reporting: table formatting."""

import pytest

from repro.analysis.reporting import (
    format_cell,
    format_series,
    format_table,
    percent_change,
)
from repro.errors import ConfigError


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_bool_not_formatted_as_float(self):
        assert format_cell(True) == "True"


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_numeric_right_alignment(self):
        out = format_table(["v"], [[1.0], [100.0]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("1.000")
        assert rows[1].endswith("100.000")

    def test_text_left_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["long-name", 2]])
        rows = out.splitlines()[2:]
        assert rows[0].startswith("a ")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigError):
            format_table([], [])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert len(out.splitlines()) == 2


class TestFormatSeries:
    def test_layout(self):
        out = format_series("x", ["s1", "s2"], [1.0, 2.0],
                            [[10.0, 20.0], [30.0, 40.0]])
        lines = out.splitlines()
        assert "s1" in lines[0] and "s2" in lines[0]
        assert len(lines) == 4

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ConfigError):
            format_series("x", ["s1"], [1.0], [[1.0], [2.0]])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError):
            format_series("x", ["s1"], [1.0, 2.0], [[1.0]])


class TestPercentChange:
    def test_increase(self):
        assert percent_change(1.18, 1.0) == pytest.approx(0.18)

    def test_decrease(self):
        assert percent_change(0.9, 1.0) == pytest.approx(-0.1)

    def test_zero_base_rejected(self):
        with pytest.raises(ConfigError):
            percent_change(1.0, 0.0)


class TestFormatBudgetDegradation:
    def _report(self, **stats_overrides):
        from repro.budget.arbiter import BudgetReport, BudgetStats

        stats = BudgetStats(**stats_overrides)
        return BudgetReport(
            fairness="max-min",
            stats=stats,
            stage_history={"rack0": ((0.0, 0), (1.0, 2))},
        )

    def test_counters_render(self):
        from repro.analysis.reporting import format_budget_degradation

        out = format_budget_degradation([
            ("pocolo", self._report(ticks=12, skipped_ticks=3,
                                    grants_issued=20, grants_expired=4,
                                    grants_lost=2, grants_delayed=1)),
        ])
        assert "Degradation under power budgets" in out
        for header in ("run", "ticks", "skipped", "granted", "expired",
                       "lost", "delayed", "max stage"):
            assert header in out
        row = out.splitlines()[-1]
        assert "pocolo" in row
        for value in ("12", "3", "20", "4", "2", "1"):
            assert value in row

    def test_max_stage_comes_from_history(self):
        from repro.analysis.reporting import format_budget_degradation

        out = format_budget_degradation([("run1", self._report())])
        assert out.splitlines()[-1].split()[-3] == "2"

    def test_malformed_row_rejected(self):
        from repro.analysis.reporting import format_budget_degradation

        with pytest.raises(ConfigError):
            format_budget_degradation([("label", None, "extra")])
