"""Tests for repro.hwmodel.meter: power metering and energy counting."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.hwmodel.meter import (
    EnergyCounter,
    PowerMeter,
    PowerReading,
    average_power_w,
)


class TestPowerMeter:
    def test_noiseless_meter_reports_source(self, rng):
        meter = PowerMeter(source=lambda: 120.0, rng=rng, noise_sigma_w=0.0)
        reading = meter.sample(0.0)
        assert reading.watts == 120.0
        assert reading.filtered_watts == 120.0

    def test_noise_has_expected_spread(self):
        meter = PowerMeter(
            source=lambda: 100.0,
            rng=np.random.default_rng(0),
            noise_sigma_w=2.0,
            ewma_alpha=1.0,
        )
        samples = [meter.sample(i * 0.1).watts for i in range(500)]
        assert abs(np.mean(samples) - 100.0) < 0.5
        assert 1.5 < np.std(samples) < 2.5

    def test_readings_clipped_at_zero(self):
        meter = PowerMeter(
            source=lambda: 0.5,
            rng=np.random.default_rng(0),
            noise_sigma_w=50.0,
        )
        for i in range(100):
            assert meter.sample(i * 0.1).watts >= 0.0

    def test_ewma_smooths_steps(self):
        values = iter([100.0] + [200.0] * 10)
        meter = PowerMeter(
            source=lambda: next(values), rng=np.random.default_rng(0),
            noise_sigma_w=0.0, ewma_alpha=0.5,
        )
        meter.sample(0.0)
        second = meter.sample(0.1)
        assert second.watts == 200.0
        assert second.filtered_watts == pytest.approx(150.0)

    def test_last_reading_tracks(self, rng):
        meter = PowerMeter(source=lambda: 75.0, rng=rng, noise_sigma_w=0.0)
        assert meter.last_reading is None
        meter.sample(1.5)
        assert meter.last_reading.time_s == 1.5

    def test_reset_clears_filter(self, rng):
        meter = PowerMeter(source=lambda: 80.0, rng=rng, noise_sigma_w=0.0,
                           ewma_alpha=0.1)
        meter.sample(0.0)
        meter.reset()
        assert meter.last_reading is None

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ConfigError):
            PowerMeter(source=lambda: 1.0, rng=rng, noise_sigma_w=-1.0)
        with pytest.raises(ConfigError):
            PowerMeter(source=lambda: 1.0, rng=rng, ewma_alpha=0.0)
        with pytest.raises(ConfigError):
            PowerMeter(source=lambda: 1.0, rng=rng, ewma_alpha=1.5)
        with pytest.raises(ConfigError):
            PowerMeter(source=lambda: 1.0, rng=rng, interval_s=0.0)
        with pytest.raises(ConfigError):
            PowerMeter(source=lambda: 1.0, rng=rng, interval_s=-0.1)

    def test_ewma_alpha_boundaries(self, rng):
        # The valid interval is (0, 1]: exactly 1 disables smoothing and
        # must be accepted; values arbitrarily close to 0 are fine too.
        meter = PowerMeter(source=lambda: 50.0, rng=rng, noise_sigma_w=0.0,
                           ewma_alpha=1.0)
        meter.sample(0.0)
        assert meter.sample(0.1).filtered_watts == 50.0
        PowerMeter(source=lambda: 50.0, rng=rng, ewma_alpha=1e-9)
        with pytest.raises(ConfigError):
            PowerMeter(source=lambda: 50.0, rng=rng, ewma_alpha=-1e-9)

    def test_noise_sigma_property_reported(self, rng):
        assert PowerMeter(source=lambda: 1.0, rng=rng,
                          noise_sigma_w=2.5).noise_sigma_w == 2.5
        assert PowerMeter(source=lambda: 1.0, rng=rng,
                          noise_sigma_w=0.0).noise_sigma_w == 0.0


class TestEnergyCounter:
    def test_trapezoid_integration(self):
        counter = EnergyCounter()
        counter.record(PowerReading(0.0, 100.0, 100.0))
        counter.record(PowerReading(10.0, 200.0, 200.0))
        assert counter.joules == pytest.approx(1500.0)

    def test_kwh_conversion(self):
        counter = EnergyCounter()
        counter.record(PowerReading(0.0, 1000.0, 1000.0))
        counter.record(PowerReading(3600.0, 1000.0, 1000.0))
        assert counter.kwh == pytest.approx(1.0)

    def test_single_reading_is_zero_energy(self):
        counter = EnergyCounter()
        counter.record(PowerReading(5.0, 100.0, 100.0))
        assert counter.joules == 0.0

    def test_out_of_order_rejected(self):
        counter = EnergyCounter()
        counter.record(PowerReading(10.0, 100.0, 100.0))
        # Out-of-order feeding is a simulation-state fault, not a config
        # mistake — the error type says so.
        with pytest.raises(SimulationError):
            counter.record(PowerReading(5.0, 100.0, 100.0))

    def test_monotonic_under_irregular_gaps(self):
        # RAPL-style counters only ever go up: with non-negative power,
        # arbitrary (even zero-length) gaps between readings must never
        # decrease the accumulated energy.
        counter = EnergyCounter()
        times = [0.0, 0.1, 0.1, 0.35, 2.0, 2.0, 17.5]
        watts = [100.0, 0.0, 50.0, 120.0, 0.0, 0.0, 80.0]
        previous = 0.0
        for t, w in zip(times, watts):
            total = counter.record(PowerReading(t, w, w))
            assert total >= previous
            previous = total
        assert counter.joules > 0.0

    def test_zero_gap_adds_no_energy(self):
        counter = EnergyCounter()
        counter.record(PowerReading(1.0, 100.0, 100.0))
        counter.record(PowerReading(1.0, 300.0, 300.0))
        assert counter.joules == 0.0

    def test_reset(self):
        counter = EnergyCounter()
        counter.record(PowerReading(0.0, 100.0, 100.0))
        counter.record(PowerReading(1.0, 100.0, 100.0))
        counter.reset()
        assert counter.joules == 0.0
        counter.record(PowerReading(0.0, 50.0, 50.0))  # earlier time OK after reset


class TestAveragePower:
    def test_empty_is_zero(self):
        assert average_power_w([]) == 0.0

    def test_single_reading(self):
        assert average_power_w([PowerReading(0.0, 42.0, 42.0)]) == 42.0

    def test_time_weighted(self):
        readings = [
            PowerReading(0.0, 100.0, 100.0),
            PowerReading(1.0, 100.0, 100.0),
            PowerReading(3.0, 400.0, 400.0),
        ]
        # trapezoid: 100*1 + 250*2 = 600 J over 3 s = 200 W
        assert average_power_w(readings) == pytest.approx(200.0)

    def test_zero_span_falls_back_to_mean(self):
        readings = [PowerReading(1.0, 100.0, 100.0), PowerReading(1.0, 300.0, 300.0)]
        assert average_power_w(readings) == pytest.approx(200.0)
