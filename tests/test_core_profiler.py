"""Tests for repro.core.profiler: grids, sampling, and the slack guard."""

import numpy as np
import pytest

from repro.core.fitting import fit_indirect_utility
from repro.core.profiler import (
    DEFAULT_SLACK_GUARD,
    default_profiling_grid,
    profile_best_effort,
    profile_latency_critical,
)
from repro.errors import ConfigError


class TestGrid:
    def test_includes_extremes(self, spec):
        grid = default_profiling_grid(spec)
        cores = {a.cores for a in grid}
        ways = {a.ways for a in grid}
        assert 1 in cores and spec.cores in cores
        assert 1 in ways and spec.llc_ways in ways

    def test_all_points_at_max_frequency(self, spec):
        assert all(a.freq_ghz == spec.max_freq_ghz
                   for a in default_profiling_grid(spec))

    def test_step_controls_density(self, spec):
        coarse = default_profiling_grid(spec, core_step=6, way_step=10)
        fine = default_profiling_grid(spec, core_step=1, way_step=1)
        assert len(coarse) < len(fine)
        assert len(fine) == spec.cores * spec.llc_ways

    def test_invalid_steps_rejected(self, spec):
        with pytest.raises(ConfigError):
            default_profiling_grid(spec, core_step=0)


class TestBestEffortProfiling:
    def test_noiseless_samples_match_ground_truth(self, graph, spec):
        grid = default_profiling_grid(spec)
        samples = profile_best_effort(graph, grid, rng=None, perf_noise=0.0,
                                      power_noise=0.0)
        assert len(samples) == len(grid)
        for sample, alloc in zip(samples, grid):
            assert sample.perf == pytest.approx(graph.throughput(alloc))
            assert sample.power_w == pytest.approx(graph.active_power_w(alloc))

    def test_noise_is_reproducible_per_seed(self, graph, spec):
        grid = default_profiling_grid(spec)
        a = profile_best_effort(graph, grid, rng=np.random.default_rng(5))
        b = profile_best_effort(graph, grid, rng=np.random.default_rng(5))
        assert [s.perf for s in a] == [s.perf for s in b]

    def test_empty_grid_rejected(self, graph):
        with pytest.raises(ConfigError):
            profile_best_effort(graph, [])


class TestLatencyCriticalProfiling:
    def test_slack_guard_filters_small_allocations(self, xapian, spec):
        grid = default_profiling_grid(spec)
        low = profile_latency_critical(xapian, grid, load_fraction=0.1, rng=None)
        high = profile_latency_critical(xapian, grid, load_fraction=0.8, rng=None)
        assert len(high) < len(low) <= len(grid)

    def test_guard_matches_slack_definition(self, xapian, spec):
        grid = default_profiling_grid(spec)
        load = 0.5 * xapian.peak_load
        kept = profile_latency_critical(xapian, grid, load_fraction=0.5, rng=None)
        kept_keys = {(s.cores, s.ways) for s in kept}
        for alloc in grid:
            expected = xapian.slack(load, alloc) >= DEFAULT_SLACK_GUARD
            assert ((alloc.cores, alloc.ways) in kept_keys) == expected

    def test_perf_metric_is_capacity(self, xapian, spec):
        grid = default_profiling_grid(spec)
        samples = profile_latency_critical(
            xapian, grid, load_fraction=0.1, rng=None, perf_noise=0.0,
            power_noise=0.0,
        )
        by_key = {(s.cores, s.ways): s for s in samples}
        for alloc in grid:
            key = (alloc.cores, alloc.ways)
            if key in by_key:
                assert by_key[key].perf == pytest.approx(xapian.capacity(alloc))

    def test_invalid_load_fraction_rejected(self, xapian, spec):
        grid = default_profiling_grid(spec)
        with pytest.raises(ConfigError):
            profile_latency_critical(xapian, grid, load_fraction=1.5)


class TestEndToEndFitQuality:
    """Fig 8's premise: profiling + fitting lands in the paper's R² band."""

    def test_r2_bands(self, lc_apps, be_apps, spec):
        grid = default_profiling_grid(spec)
        rng = np.random.default_rng(42)
        for app in be_apps.values():
            fit = fit_indirect_utility(profile_best_effort(app, grid, rng=rng))
            assert 0.70 <= fit.r2_perf <= 1.0
            assert 0.85 <= fit.r2_power <= 1.0
        for app in lc_apps.values():
            fit = fit_indirect_utility(
                profile_latency_critical(app, grid, load_fraction=0.3, rng=rng)
            )
            assert 0.70 <= fit.r2_perf <= 1.0
            assert 0.85 <= fit.r2_power <= 1.0

    def test_preference_ordering_recovered(self, be_apps, spec):
        """The fitted indirect preferences must rank graph > rnn > lstm
        on cores — the ordering placement relies on."""
        grid = default_profiling_grid(spec)
        rng = np.random.default_rng(7)
        shares = {}
        for name, app in be_apps.items():
            fit = fit_indirect_utility(profile_best_effort(app, grid, rng=rng))
            shares[name] = fit.preference_vector()["cores"]
        assert shares["graph"] > shares["pbzip"] > shares["lstm"]
        assert shares["rnn"] > shares["lstm"]


class TestPowerAccountingConventions:
    def test_apportioned_power_is_higher(self, graph, spec):
        grid = default_profiling_grid(spec)
        active = profile_best_effort(graph, grid, rng=None, perf_noise=0.0,
                                     power_noise=0.0)
        attributed = profile_best_effort(graph, grid, rng=None, perf_noise=0.0,
                                         power_noise=0.0, apportion_idle=True)
        for a, b in zip(active, attributed):
            assert b.power_w > a.power_w
            # The full allocation carries the whole idle power.
        full_a = next(s for s in active if s.cores == spec.cores
                      and s.ways == spec.llc_ways)
        full_b = next(s for s in attributed if s.cores == spec.cores
                      and s.ways == spec.llc_ways)
        assert full_b.power_w - full_a.power_w == pytest.approx(
            spec.idle_power_w
        )

    def test_apportionment_compresses_preferences(self, graph, spec):
        import numpy as np
        grid = default_profiling_grid(spec)
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        fit_active = fit_indirect_utility(
            profile_best_effort(graph, grid, rng=rng_a))
        fit_attr = fit_indirect_utility(
            profile_best_effort(graph, grid, rng=rng_b, apportion_idle=True))
        active_share = fit_active.preference_vector()["cores"]
        attr_share = fit_attr.preference_vector()["cores"]
        assert abs(attr_share - 0.5) < abs(active_share - 0.5)
        assert (attr_share > 0.5) == (active_share > 0.5)  # same side
