"""Tests for repro.workloads.traces: load generation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.workloads.traces import (
    UNIFORM_EVAL_LEVELS,
    ConstantTrace,
    DiurnalTrace,
    NoisyTrace,
    ReplayTrace,
    StepTrace,
    daily_average,
    uniform_levels,
)


class TestConstantTrace:
    def test_constant_everywhere(self):
        trace = ConstantTrace(0.4)
        assert trace.load_fraction(0.0) == 0.4
        assert trace.load_fraction(1e6) == 0.4

    def test_bounds_enforced(self):
        with pytest.raises(ConfigError):
            ConstantTrace(1.5)
        with pytest.raises(ConfigError):
            ConstantTrace(-0.1)


class TestDiurnalTrace:
    def test_peak_at_peak_time(self):
        trace = DiurnalTrace(min_fraction=0.1, max_fraction=0.9,
                             peak_time_s=14 * 3600.0)
        assert trace.load_fraction(14 * 3600.0) == pytest.approx(0.9)

    def test_trough_half_period_later(self):
        trace = DiurnalTrace(min_fraction=0.1, max_fraction=0.9,
                             peak_time_s=14 * 3600.0)
        assert trace.load_fraction(2 * 3600.0) == pytest.approx(0.1)

    def test_periodicity(self):
        trace = DiurnalTrace()
        assert trace.load_fraction(5000.0) == pytest.approx(
            trace.load_fraction(5000.0 + 86400.0)
        )

    @given(st.floats(min_value=0.0, max_value=86400.0 * 3))
    def test_always_in_bounds(self, t):
        trace = DiurnalTrace(min_fraction=0.2, max_fraction=0.8)
        assert 0.2 - 1e-9 <= trace.load_fraction(t) <= 0.8 + 1e-9

    def test_sharpness_narrows_extremes_but_keeps_them(self):
        smooth = DiurnalTrace(sharpness=1)
        sharp = DiurnalTrace(sharpness=3)
        peak_t = smooth.peak_time_s
        # Extremes preserved exactly.
        assert sharp.load_fraction(peak_t) == pytest.approx(
            smooth.load_fraction(peak_t)
        )
        # Off-phase values move toward the midpoint (0.5 by default).
        t = 4 * 3600.0
        assert abs(sharp.load_fraction(t) - 0.5) < abs(smooth.load_fraction(t) - 0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            DiurnalTrace(min_fraction=0.9, max_fraction=0.1)
        with pytest.raises(ConfigError):
            DiurnalTrace(period_s=0.0)
        with pytest.raises(ConfigError):
            DiurnalTrace(sharpness=2)  # must be odd


class TestStepTrace:
    def test_steps_apply_at_breakpoints(self):
        trace = StepTrace.of((0.0, 0.5), (60.0, 0.8))
        assert trace.load_fraction(0.0) == 0.5
        assert trace.load_fraction(59.9) == 0.5
        assert trace.load_fraction(60.0) == 0.8
        assert trace.load_fraction(1e5) == 0.8

    def test_before_first_breakpoint(self):
        trace = StepTrace.of((10.0, 0.7))
        assert trace.load_fraction(0.0) == 0.7

    def test_unordered_breakpoints_rejected(self):
        with pytest.raises(ConfigError):
            StepTrace.of((60.0, 0.5), (0.0, 0.8))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            StepTrace(steps=())

    def test_out_of_bounds_fraction_rejected(self):
        with pytest.raises(ConfigError):
            StepTrace.of((0.0, 1.5))


class TestReplayTrace:
    def test_interpolation(self):
        trace = ReplayTrace(samples=(0.0, 1.0), interval_s=10.0)
        assert trace.load_fraction(5.0) == pytest.approx(0.5)

    def test_exact_samples(self):
        trace = ReplayTrace(samples=(0.2, 0.6, 0.4), interval_s=10.0)
        assert trace.load_fraction(0.0) == pytest.approx(0.2)
        assert trace.load_fraction(10.0) == pytest.approx(0.6)

    def test_wraparound(self):
        trace = ReplayTrace(samples=(0.2, 0.8), interval_s=10.0)
        assert trace.load_fraction(20.0) == pytest.approx(0.2)
        # Between last sample and wrap: interpolates back toward sample 0.
        assert trace.load_fraction(15.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReplayTrace(samples=(0.5,), interval_s=10.0)
        with pytest.raises(ConfigError):
            ReplayTrace(samples=(0.5, 0.6), interval_s=0.0)
        with pytest.raises(ConfigError):
            ReplayTrace(samples=(0.5, 1.6), interval_s=10.0)


class TestNoisyTrace:
    def test_reproducible_within_quantum(self):
        trace = NoisyTrace(ConstantTrace(0.5), sigma=0.1, seed=4)
        assert trace.load_fraction(3.2) == trace.load_fraction(3.7)

    def test_different_quanta_differ(self):
        trace = NoisyTrace(ConstantTrace(0.5), sigma=0.1, seed=4)
        assert trace.load_fraction(3.0) != trace.load_fraction(4.0)

    def test_zero_sigma_passthrough(self):
        trace = NoisyTrace(ConstantTrace(0.5), sigma=0.0)
        assert trace.load_fraction(123.0) == 0.5

    @given(st.floats(min_value=0.0, max_value=1e5))
    def test_always_in_bounds(self, t):
        trace = NoisyTrace(ConstantTrace(0.9), sigma=0.5, seed=1)
        assert 0.0 <= trace.load_fraction(t) <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            NoisyTrace(ConstantTrace(0.5), sigma=-0.1)
        with pytest.raises(ConfigError):
            NoisyTrace(ConstantTrace(0.5), quantum_s=0.0)


class TestUniformLevels:
    def test_paper_sweep(self):
        assert list(UNIFORM_EVAL_LEVELS) == pytest.approx(
            [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
        )

    def test_custom_range(self):
        assert uniform_levels(0.2, 0.6, 0.2) == pytest.approx([0.2, 0.4, 0.6])

    def test_validation(self):
        with pytest.raises(ConfigError):
            uniform_levels(0.5, 0.1, 0.1)
        with pytest.raises(ConfigError):
            uniform_levels(0.1, 0.9, 0.0)
        with pytest.raises(ConfigError):
            uniform_levels(0.5, 1.5, 0.5)


class TestDailyAverage:
    def test_constant(self):
        assert daily_average(ConstantTrace(0.4)) == pytest.approx(0.4)

    def test_diurnal_average_is_midpoint(self):
        trace = DiurnalTrace(min_fraction=0.2, max_fraction=0.8)
        assert daily_average(trace, samples=1000) == pytest.approx(0.5, abs=0.01)

    def test_needs_samples(self):
        with pytest.raises(ConfigError):
            daily_average(ConstantTrace(0.5), samples=0)
