"""Tests for repro.sim.cluster: multi-server sweeps and aggregation."""

import pytest

from repro.core.server_manager import PowerOptimizedManager
from repro.errors import ConfigError
from repro.sim.cluster import ClusterRunResult, ServerPlan, run_cluster
from repro.sim.colocation import SimConfig


def plans_for(catalog, pairs):
    plans = []
    for lc_name, be_name in pairs:
        lc = catalog.lc_apps[lc_name]
        model = catalog.lc_fits[lc_name].model
        plans.append(
            ServerPlan(
                lc_app=lc,
                be_app=catalog.be_apps[be_name] if be_name else None,
                provisioned_power_w=lc.peak_server_power_w(),
                manager_factory=lambda s, m=model: PowerOptimizedManager(s, model=m),
            )
        )
    return plans


class TestRunCluster:
    def test_outcome_grid_complete(self, catalog):
        plans = plans_for(catalog, [("xapian", "rnn"), ("sphinx", "graph")])
        result = run_cluster(plans, catalog.spec, levels=[0.2, 0.6],
                             duration_s=10.0, config=SimConfig(seed=0))
        assert len(result.outcomes) == 4
        assert result.servers() == ["xapian", "sphinx"]

    def test_per_server_aggregation(self, catalog):
        plans = plans_for(catalog, [("xapian", "rnn")])
        result = run_cluster(plans, catalog.spec, levels=[0.2, 0.6],
                             duration_s=10.0, config=SimConfig(seed=0))
        by_server = result.be_throughput_by_server()
        values = [o.result.avg_be_throughput_norm for o in result.outcomes]
        assert by_server["xapian"] == pytest.approx(sum(values) / 2)

    def test_utilization_bounded(self, catalog):
        plans = plans_for(catalog, [("tpcc", "pbzip")])
        result = run_cluster(plans, catalog.spec, levels=[0.5],
                             duration_s=10.0, config=SimConfig(seed=0))
        util = result.power_utilization_by_server()["tpcc"]
        assert 0.3 < util <= 1.05

    def test_mapping_reported(self, catalog):
        plans = plans_for(catalog, [("xapian", "rnn"), ("sphinx", None)])
        result = run_cluster(plans, catalog.spec, levels=[0.3],
                             duration_s=5.0, config=SimConfig(seed=0))
        mapping = result.be_names_by_server()
        assert mapping["xapian"] == "rnn"
        assert mapping["sphinx"] is None

    def test_cluster_scalars(self, catalog):
        plans = plans_for(catalog, [("xapian", "rnn"), ("sphinx", "graph")])
        result = run_cluster(plans, catalog.spec, levels=[0.3],
                             duration_s=10.0, config=SimConfig(seed=0))
        assert 0.0 < result.cluster_be_throughput() < 1.0
        assert 0.0 < result.cluster_power_utilization() <= 1.05
        assert result.total_energy_kwh() > 0.0
        assert 0.0 <= result.cluster_violation_fraction() <= 1.0

    def test_empty_result_scalars(self):
        empty = ClusterRunResult()
        assert empty.cluster_be_throughput() == 0.0
        assert empty.cluster_power_utilization() == 0.0
        assert empty.cluster_violation_fraction() == 0.0
        assert empty.servers() == []

    def test_validation(self, catalog):
        with pytest.raises(ConfigError):
            run_cluster([], catalog.spec)
        plans = plans_for(catalog, [("xapian", "rnn")])
        with pytest.raises(ConfigError):
            run_cluster(plans, catalog.spec, levels=[])
        with pytest.raises(ConfigError):
            ServerPlan(
                lc_app=catalog.lc_apps["xapian"],
                manager_factory=lambda s: None,
                provisioned_power_w=0.0,
            )

    def test_fresh_state_per_cell(self, catalog):
        """Order of levels must not change per-level outcomes."""
        plans = plans_for(catalog, [("xapian", "rnn")])
        fwd = run_cluster(plans, catalog.spec, levels=[0.2, 0.8],
                          duration_s=10.0, config=SimConfig(seed=0))
        rev = run_cluster(plans, catalog.spec, levels=[0.8, 0.2],
                          duration_s=10.0, config=SimConfig(seed=0))
        fwd_by_level = {o.level: o.result.avg_be_throughput_norm for o in fwd.outcomes}
        rev_by_level = {o.level: o.result.avg_be_throughput_norm for o in rev.outcomes}
        assert fwd_by_level == rev_by_level
