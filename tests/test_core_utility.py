"""Tests for repro.core.utility: the Cobb-Douglas indirect utility engine."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.utility import (
    CobbDouglasParams,
    IndirectUtilityModel,
    LinearPowerParams,
    integer_demand_allocation,
    integer_min_power_allocation,
)
from repro.errors import CapacityError, ConfigError
from repro.hwmodel.spec import Allocation


@pytest.fixture()
def model():
    """A sphinx-like model: cores power-expensive, ways cheap."""
    return IndirectUtilityModel(
        perf=CobbDouglasParams(alpha0=2.0, alphas=(0.6, 0.4)),
        power=LinearPowerParams(p_static=5.0, p=(8.0, 1.5)),
    )


positive_alpha = st.floats(min_value=0.1, max_value=1.5)
positive_p = st.floats(min_value=0.2, max_value=10.0)
budget = st.floats(min_value=20.0, max_value=300.0)


def random_model(a_c, a_w, p_c, p_w, p_static=5.0, alpha0=2.0):
    return IndirectUtilityModel(
        perf=CobbDouglasParams(alpha0=alpha0, alphas=(a_c, a_w)),
        power=LinearPowerParams(p_static=p_static, p=(p_c, p_w)),
    )


class TestParams:
    def test_performance_zero_when_any_resource_zero(self, model):
        assert model.performance((0.0, 10.0)) == 0.0
        assert model.performance((3.0, 0.0)) == 0.0

    def test_performance_cobb_douglas_form(self, model):
        perf = model.performance((4.0, 9.0))
        assert perf == pytest.approx(2.0 * 4.0 ** 0.6 * 9.0 ** 0.4)

    def test_power_linear_form(self, model):
        assert model.power_w((2.0, 4.0)) == pytest.approx(5.0 + 16.0 + 6.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CobbDouglasParams(alpha0=0.0, alphas=(0.5,))
        with pytest.raises(ConfigError):
            CobbDouglasParams(alpha0=1.0, alphas=(0.5, -0.1))
        with pytest.raises(ConfigError):
            LinearPowerParams(p_static=-1.0, p=(1.0,))
        with pytest.raises(ConfigError):
            LinearPowerParams(p_static=0.0, p=(0.0,))

    def test_halves_must_agree_on_k(self):
        with pytest.raises(ConfigError):
            IndirectUtilityModel(
                perf=CobbDouglasParams(alpha0=1.0, alphas=(0.5, 0.5)),
                power=LinearPowerParams(p_static=0.0, p=(1.0,)),
            )

    def test_negative_resources_rejected(self, model):
        with pytest.raises(ConfigError):
            model.performance((-1.0, 2.0))
        with pytest.raises(ConfigError):
            model.power_w((-1.0, 2.0))

    def test_wrong_arity_rejected(self, model):
        with pytest.raises(ConfigError):
            model.performance((1.0, 2.0, 3.0))


class TestPreferences:
    def test_normalized_and_ordered(self, model):
        pref = model.preference_vector()
        assert pref["cores"] + pref["ways"] == pytest.approx(1.0)
        # cores: 0.6/8 = 0.075; ways: 0.4/1.5 = 0.267 -> ways preferred
        assert pref["ways"] > pref["cores"]

    def test_direct_preferences(self, model):
        direct = model.direct_preference_vector()
        assert direct["cores"] == pytest.approx(0.6)
        assert direct["ways"] == pytest.approx(0.4)

    def test_sphinx_style_flip(self, model):
        # Direct prefers cores, indirect prefers ways — the paper's pivot.
        assert model.direct_preference_vector()["cores"] > 0.5
        assert model.preference_vector()["cores"] < 0.5


class TestDemand:
    def test_closed_form_values(self, model):
        # r_j = (P - p_static)/p_j * a_j / sum(a); P=105 -> headroom 100
        demand = model.demand(105.0)
        assert demand[0] == pytest.approx(100.0 / 8.0 * 0.6)
        assert demand[1] == pytest.approx(100.0 / 1.5 * 0.4)

    def test_budget_exactly_spent(self, model):
        demand = model.demand(105.0)
        assert model.power_w(demand) == pytest.approx(105.0)

    def test_budget_below_static_rejected(self, model):
        with pytest.raises(CapacityError):
            model.demand(4.0)

    @settings(max_examples=50, deadline=None)
    @given(positive_alpha, positive_alpha, positive_p, positive_p, budget)
    def test_demand_spends_whole_budget(self, a_c, a_w, p_c, p_w, power):
        model = random_model(a_c, a_w, p_c, p_w)
        demand = model.demand(power)
        assert model.power_w(demand) == pytest.approx(power)

    @settings(max_examples=50, deadline=None)
    @given(positive_alpha, positive_alpha, positive_p, positive_p, budget,
           st.floats(min_value=-0.3, max_value=0.3),
           st.integers(min_value=0, max_value=1000))
    def test_demand_is_optimal_on_budget_line(self, a_c, a_w, p_c, p_w, power,
                                              shift, seed):
        """Any same-cost perturbation of the demand performs no better."""
        model = random_model(a_c, a_w, p_c, p_w)
        demand = model.demand(power)
        best = model.performance(demand)
        # Move delta watts from ways to cores (or back), stay on the line.
        delta_w = shift * (power - 5.0)
        r_c = demand[0] + delta_w / p_c
        r_w = demand[1] - delta_w / p_w
        if r_c <= 0 or r_w <= 0:
            return
        assert model.performance((r_c, r_w)) <= best + 1e-9 * max(1.0, best)


class TestLeastPower:
    def test_dual_reaches_target(self, model):
        target = 5.0
        alloc = model.least_power_allocation(target)
        assert model.performance(alloc) == pytest.approx(target)

    def test_power_formula(self, model):
        # power = p_static + t * sum(alpha); verify via the allocation.
        alloc = model.least_power_allocation(5.0)
        t = alloc[0] * model.power.p[0] / model.perf.alphas[0]
        assert model.min_power_for_performance(5.0) == pytest.approx(
            5.0 + t * (0.6 + 0.4)
        )

    def test_primal_dual_consistency(self, model):
        """demand(min_power(U)) must reproduce the least-power allocation."""
        target = 4.0
        power = model.min_power_for_performance(target)
        demand = model.demand(power)
        alloc = model.least_power_allocation(target)
        assert demand[0] == pytest.approx(alloc[0])
        assert demand[1] == pytest.approx(alloc[1])

    def test_invalid_target_rejected(self, model):
        with pytest.raises(ConfigError):
            model.least_power_allocation(0.0)

    @settings(max_examples=50, deadline=None)
    @given(positive_alpha, positive_alpha, positive_p, positive_p,
           st.floats(min_value=0.5, max_value=50.0))
    def test_dual_is_cheapest_on_indifference_curve(self, a_c, a_w, p_c, p_w, target):
        model = random_model(a_c, a_w, p_c, p_w)
        alloc = model.least_power_allocation(target)
        best_power = model.power_w(alloc)
        # Walk the indifference curve: same perf, different mixes.
        for scale in (0.5, 0.8, 1.25, 2.0):
            r_c = alloc[0] * scale
            r_w = (target / (model.perf.alpha0 * r_c ** a_c)) ** (1.0 / a_w)
            assert model.power_w((r_c, r_w)) >= best_power - 1e-6 * best_power

    @settings(max_examples=30, deadline=None)
    @given(positive_alpha, positive_alpha, positive_p, positive_p)
    def test_expansion_ray_matches_preference_ratio(self, a_c, a_w, p_c, p_w):
        model = random_model(a_c, a_w, p_c, p_w)
        a = model.least_power_allocation(1.0)
        b = model.least_power_allocation(7.0)
        assert a[0] / a[1] == pytest.approx(b[0] / b[1])
        assert a[0] / a[1] == pytest.approx((a_c / p_c) / (a_w / p_w))


class TestConstrainedDemand:
    def test_unconstrained_when_ceiling_loose(self, model):
        free = model.demand(105.0)
        capped = model.constrained_demand(105.0, (1e6, 1e6))
        assert capped[0] == pytest.approx(free[0])
        assert capped[1] == pytest.approx(free[1])

    def test_ceiling_respected_and_budget_reflows(self, model):
        free = model.demand(105.0)
        ceiling = (free[0] * 0.5, 1e6)
        capped = model.constrained_demand(105.0, ceiling)
        assert capped[0] == pytest.approx(ceiling[0])
        # The watts freed by capping cores flow into ways.
        assert capped[1] > free[1]
        assert model.power_w(capped) == pytest.approx(105.0)

    def test_both_capped(self, model):
        capped = model.constrained_demand(1000.0, (2.0, 3.0))
        assert capped == (2.0, 3.0)

    def test_budget_exhausted_by_caps(self):
        model = random_model(0.5, 0.5, 10.0, 10.0, p_static=5.0)
        capped = model.constrained_demand(10.0, (0.4, 1e6))
        # headroom 5 W; cores capped at 0.4 (4 W), ways get the rest.
        assert capped[0] <= 0.4 + 1e-9
        assert model.power_w(capped) <= 10.0 + 1e-9

    def test_validation(self, model):
        with pytest.raises(ConfigError):
            model.constrained_demand(50.0, (1.0,))
        with pytest.raises(ConfigError):
            model.constrained_demand(50.0, (-1.0, 2.0))


class TestIntegerProjections:
    def test_min_power_feasible_and_minimal_nearby(self, model, spec):
        target = model.performance((4.0, 8.0))
        alloc = integer_min_power_allocation(model, target, spec)
        assert model.performance((alloc.cores, alloc.ways)) >= target
        # No cheaper feasible neighbor in a radius-2 box.
        cost = model.power_w((alloc.cores, alloc.ways))
        for dc in range(-2, 3):
            for dw in range(-2, 3):
                c, w = alloc.cores + dc, alloc.ways + dw
                if not (1 <= c <= spec.cores and 1 <= w <= spec.llc_ways):
                    continue
                if model.performance((c, w)) >= target:
                    assert model.power_w((c, w)) >= cost - 1e-9

    def test_min_power_unreachable_target(self, model, spec):
        full = model.performance((float(spec.cores), float(spec.llc_ways)))
        with pytest.raises(CapacityError):
            integer_min_power_allocation(model, full * 1.5, spec)

    def test_min_power_off_ray_targets_use_grid_scan(self, spec):
        # Ways-greedy model whose continuous ray leaves the box: the
        # neighborhood around the rounded ray point misses, grid scan hits.
        model = random_model(0.3, 0.7, 8.0, 0.5)
        target = model.performance((float(spec.cores), float(spec.llc_ways))) * 0.95
        alloc = integer_min_power_allocation(model, target, spec, radius=1)
        assert model.performance((alloc.cores, alloc.ways)) >= target

    def test_demand_allocation_respects_budget(self, model, spec):
        alloc = integer_demand_allocation(model, 80.0, spec)
        assert not alloc.is_empty
        assert model.power_w((alloc.cores, alloc.ways)) <= 80.0 + 1e-9

    def test_demand_allocation_respects_ceiling(self, model, spec):
        ceiling = Allocation(cores=3, ways=4)
        alloc = integer_demand_allocation(model, 500.0, spec, ceiling=ceiling)
        assert alloc.cores <= 3
        assert alloc.ways <= 4

    def test_demand_allocation_empty_when_budget_tiny(self, model, spec):
        assert integer_demand_allocation(model, 1.0, spec).is_empty

    def test_demand_allocation_empty_ceiling(self, model, spec):
        assert integer_demand_allocation(
            model, 100.0, spec, ceiling=Allocation.empty()
        ).is_empty

    def test_greedy_topup_uses_leftover_budget(self, model, spec):
        small = integer_demand_allocation(model, 40.0, spec)
        large = integer_demand_allocation(model, 120.0, spec)
        assert (large.cores, large.ways) >= (small.cores, small.ways)

    def test_two_resource_guard(self, spec):
        model3 = IndirectUtilityModel(
            perf=CobbDouglasParams(alpha0=1.0, alphas=(0.3, 0.3, 0.3)),
            power=LinearPowerParams(p_static=0.0, p=(1.0, 1.0, 1.0)),
            names=("a", "b", "c"),
        )
        with pytest.raises(ConfigError):
            integer_min_power_allocation(model3, 1.0, spec)
