"""Tests for repro.sim.queueing — and the analytic latency model's shape.

The headline test pins the closed-form ``t0 / (1 - knee * rho)`` tail
model against discrete-event ground truth: same monotone blow-up, a
calibratable knee, SLO-scale latencies near capacity.
"""

import pytest

from repro.apps.latency import LatencySlo, TailLatencyModel
from repro.errors import ConfigError
from repro.sim.queueing import (
    QueueingConfig,
    calibrate_knee,
    p99_curve,
    simulate_queue,
)


class TestConfig:
    def test_rho(self):
        config = QueueingConfig(arrival_rate=50.0, service_rate_total=100.0)
        assert config.rho == 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            QueueingConfig(arrival_rate=-1.0, service_rate_total=100.0)
        with pytest.raises(ConfigError):
            QueueingConfig(arrival_rate=1.0, service_rate_total=0.0)
        with pytest.raises(ConfigError):
            QueueingConfig(arrival_rate=1.0, service_rate_total=10.0, workers=0)
        with pytest.raises(ConfigError):
            QueueingConfig(arrival_rate=1.0, service_rate_total=10.0,
                           service_cv=0.0)


class TestSimulateQueue:
    def test_light_load_latency_is_service_time(self):
        config = QueueingConfig(arrival_rate=1.0, service_rate_total=100.0,
                                workers=2, seed=1)
        result = simulate_queue(config, num_requests=5_000)
        # At rho = 0.01 there is essentially no queueing: mean latency is
        # the mean service time, 2 workers / 100 rps = 20 ms.
        assert result.mean_latency_s == pytest.approx(0.02, rel=0.1)

    def test_latency_grows_with_utilization(self):
        p99s = []
        for rho in (0.3, 0.6, 0.9):
            config = QueueingConfig(arrival_rate=rho * 100.0,
                                    service_rate_total=100.0, workers=4, seed=2)
            p99s.append(simulate_queue(config, num_requests=20_000).p99_s)
        assert p99s == sorted(p99s)
        assert p99s[-1] > 2 * p99s[0]

    def test_overload_explodes(self):
        stable = simulate_queue(
            QueueingConfig(arrival_rate=80.0, service_rate_total=100.0,
                           workers=4, seed=3), num_requests=20_000)
        overloaded = simulate_queue(
            QueueingConfig(arrival_rate=130.0, service_rate_total=100.0,
                           workers=4, seed=3), num_requests=20_000)
        assert overloaded.p99_s > 10 * stable.p99_s

    def test_percentiles_ordered(self):
        config = QueueingConfig(arrival_rate=70.0, service_rate_total=100.0,
                                workers=4, seed=4)
        result = simulate_queue(config, num_requests=10_000)
        assert result.p50_s <= result.p95_s <= result.p99_s
        assert result.completed > 0
        assert result.max_queue_len >= 1

    def test_deterministic_by_seed(self):
        config = QueueingConfig(arrival_rate=50.0, service_rate_total=100.0,
                                workers=2, seed=9)
        a = simulate_queue(config, num_requests=2_000)
        b = simulate_queue(config, num_requests=2_000)
        assert a.p99_s == b.p99_s

    def test_more_workers_same_rate_changes_distribution(self):
        one = simulate_queue(
            QueueingConfig(arrival_rate=50.0, service_rate_total=100.0,
                           workers=1, seed=5), num_requests=10_000)
        many = simulate_queue(
            QueueingConfig(arrival_rate=50.0, service_rate_total=100.0,
                           workers=8, seed=5), num_requests=10_000)
        # Same total rate but longer individual service times: mean
        # latency rises with worker count at fixed total capacity.
        assert many.mean_latency_s > one.mean_latency_s

    def test_validation(self):
        config = QueueingConfig(arrival_rate=1.0, service_rate_total=10.0)
        with pytest.raises(ConfigError):
            simulate_queue(config, num_requests=10)
        with pytest.raises(ConfigError):
            simulate_queue(config, warmup_fraction=1.0)

    def test_percentile_accessor(self):
        config = QueueingConfig(arrival_rate=10.0, service_rate_total=100.0,
                                seed=0)
        result = simulate_queue(config, num_requests=2_000)
        assert result.percentile(99.0) == result.p99_s
        with pytest.raises(ConfigError):
            result.percentile(90.0)


class TestAnalyticModelValidation:
    """The reason this module exists: validate the closed-form tail model."""

    def test_knee_model_fits_measured_curve(self):
        curve = p99_curve(
            service_rate_total=100.0,
            rhos=[0.2, 0.4, 0.6, 0.8, 0.9],
            workers=4, num_requests=30_000, seed=7,
        )
        t0, knee = calibrate_knee(curve)
        assert t0 > 0
        assert 0.5 < knee < 1.05
        # The fitted hyperbola reproduces the measured p99s reasonably.
        for rho, measured in curve:
            predicted = t0 / (1.0 - knee * rho)
            assert predicted == pytest.approx(measured, rel=0.5)

    def test_analytic_model_and_queue_agree_on_shape(self):
        """Both latency curves are monotone and convex over rho."""
        curve = p99_curve(
            service_rate_total=100.0,
            rhos=[0.3, 0.5, 0.7, 0.9],
            workers=4, num_requests=30_000, seed=8,
        )
        measured = [p for _, p in curve]
        slo = LatencySlo(p95_s=measured[-1] * 0.8, p99_s=measured[-1])
        model = TailLatencyModel(slo=slo)
        analytic = [model.p99_s(rho * 100.0, 100.0 / 0.9) for rho, _ in curve]
        # Monotone.
        assert measured == sorted(measured)
        assert analytic == sorted(analytic)
        # Convex: increments grow.
        for series in (measured, analytic):
            increments = [b - a for a, b in zip(series, series[1:])]
            assert increments == sorted(increments)

    def test_calibrate_knee_validation(self):
        with pytest.raises(ConfigError):
            calibrate_knee([(0.1, 1.0), (0.2, 2.0)])
        with pytest.raises(ConfigError):
            calibrate_knee([(0.1, 1.0), (0.2, 0.0), (0.3, 2.0)])

    def test_curve_validation(self):
        with pytest.raises(ConfigError):
            p99_curve(100.0, rhos=[-0.1])
