"""Tests for repro.hwmodel.spec: ladders, server specs, allocations."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import AllocationError, ConfigError
from repro.hwmodel.spec import (
    Allocation,
    FrequencyLadder,
    ServerSpec,
    allocation_distance,
    spare_of,
)


class TestFrequencyLadder:
    def test_default_ladder_matches_table1(self):
        ladder = FrequencyLadder()
        assert ladder.min_ghz == 1.2
        assert ladder.max_ghz == 2.2
        assert ladder.num_steps == 11

    def test_steps_are_ascending_and_inclusive(self):
        steps = FrequencyLadder().steps()
        assert steps[0] == 1.2
        assert steps[-1] == 2.2
        assert list(steps) == sorted(steps)

    def test_clamp_below_above_and_snap(self):
        ladder = FrequencyLadder()
        assert ladder.clamp(0.5) == 1.2
        assert ladder.clamp(9.9) == 2.2
        assert ladder.clamp(1.74) == pytest.approx(1.7)
        assert ladder.clamp(1.76) == pytest.approx(1.8)

    def test_contains_only_ladder_points(self):
        ladder = FrequencyLadder()
        assert ladder.contains(1.5)
        assert not ladder.contains(1.55)
        assert not ladder.contains(1.1)
        assert not ladder.contains(2.3)

    def test_step_down_and_up_clamp_at_ends(self):
        ladder = FrequencyLadder()
        assert ladder.step_down(1.2) == 1.2
        assert ladder.step_up(2.2) == 2.2
        assert ladder.step_down(2.2) == pytest.approx(2.1)
        assert ladder.step_up(1.2) == pytest.approx(1.3)

    def test_invalid_ladders_rejected(self):
        with pytest.raises(ConfigError):
            FrequencyLadder(min_ghz=-1.0)
        with pytest.raises(ConfigError):
            FrequencyLadder(min_ghz=2.0, max_ghz=1.0)
        with pytest.raises(ConfigError):
            FrequencyLadder(step_ghz=0.0)

    @given(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
    def test_clamp_always_lands_on_ladder(self, freq):
        ladder = FrequencyLadder()
        assert ladder.contains(ladder.clamp(freq))

    @given(st.floats(min_value=1.2, max_value=2.2))
    def test_step_down_never_increases(self, freq):
        ladder = FrequencyLadder()
        assert ladder.step_down(freq) <= ladder.clamp(freq) + 1e-9


class TestServerSpec:
    def test_table1_defaults(self, spec):
        assert spec.cores == 12
        assert spec.llc_ways == 20
        assert spec.idle_power_w == 50.0
        assert spec.nameplate_power_w == 135.0
        assert spec.max_freq_ghz == 2.2
        assert spec.min_freq_ghz == 1.2

    def test_full_allocation(self, spec):
        full = spec.full_allocation()
        assert full.cores == 12
        assert full.ways == 20
        assert full.freq_ghz == 2.2

    def test_validate_rejects_oversubscription(self, spec):
        with pytest.raises(AllocationError):
            spec.validate(Allocation(cores=13, ways=5))
        with pytest.raises(AllocationError):
            spec.validate(Allocation(cores=2, ways=21))
        with pytest.raises(AllocationError):
            spec.validate(Allocation(cores=2, ways=2, freq_ghz=1.55))

    def test_validate_accepts_valid_and_empty(self, spec):
        spec.validate(Allocation(cores=3, ways=7, freq_ghz=1.8))
        spec.validate(Allocation.empty())

    def test_iter_allocations_covers_grid(self, spec):
        allocs = list(spec.iter_allocations())
        assert len(allocs) == 12 * 20
        assert all(a.freq_ghz == 2.2 for a in allocs)

    def test_iter_allocations_custom_frequency(self, spec):
        allocs = list(spec.iter_allocations(freq_ghz=1.5, min_cores=11, min_ways=19))
        assert len(allocs) == 4
        assert all(a.freq_ghz == 1.5 for a in allocs)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            ServerSpec(cores=0)
        with pytest.raises(ConfigError):
            ServerSpec(llc_ways=0)
        with pytest.raises(ConfigError):
            ServerSpec(idle_power_w=-1.0)


class TestAllocation:
    def test_empty_allocation(self):
        empty = Allocation.empty()
        assert empty.is_empty
        assert empty.cores == 0 and empty.ways == 0

    def test_cores_without_ways_rejected(self):
        with pytest.raises(AllocationError):
            Allocation(cores=2, ways=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(AllocationError):
            Allocation(cores=-1, ways=2)
        with pytest.raises(AllocationError):
            Allocation(cores=1, ways=-1)

    def test_duty_cycle_bounds(self):
        Allocation(cores=1, ways=1, duty_cycle=0.0)
        Allocation(cores=1, ways=1, duty_cycle=1.0)
        with pytest.raises(AllocationError):
            Allocation(cores=1, ways=1, duty_cycle=1.2)
        with pytest.raises(AllocationError):
            Allocation(cores=1, ways=1, duty_cycle=-0.1)

    def test_with_helpers_produce_copies(self):
        alloc = Allocation(cores=4, ways=6, freq_ghz=2.0)
        assert alloc.with_freq(1.8).freq_ghz == 1.8
        assert alloc.with_freq(1.8) is not alloc
        assert alloc.with_duty_cycle(0.5).duty_cycle == 0.5
        assert alloc.with_resources(2, 3).cores == 2
        assert alloc.freq_ghz == 2.0  # original untouched

    def test_resource_vector(self):
        assert Allocation(cores=4, ways=6).resource_vector() == (4.0, 6.0)


class TestSpareOf:
    def test_complement_of_partial_allocation(self, spec):
        spare = spare_of(spec, Allocation(cores=4, ways=6))
        assert spare.cores == 8
        assert spare.ways == 14
        assert spare.freq_ghz == spec.max_freq_ghz

    def test_full_primary_leaves_nothing(self, spec):
        assert spare_of(spec, spec.full_allocation()).is_empty

    def test_all_cores_taken_leaves_nothing(self, spec):
        assert spare_of(spec, Allocation(cores=12, ways=5)).is_empty

    @given(st.integers(min_value=1, max_value=11), st.integers(min_value=1, max_value=19))
    def test_primary_plus_spare_covers_server(self, cores, ways):
        spec = ServerSpec()
        primary = Allocation(cores=cores, ways=ways)
        spare = spare_of(spec, primary)
        assert primary.cores + spare.cores == spec.cores
        assert primary.ways + spare.ways == spec.llc_ways


class TestAllocationDistance:
    def test_zero_for_identical(self):
        a = Allocation(cores=3, ways=5)
        assert allocation_distance(a, a) == 0.0

    def test_euclidean(self):
        a = Allocation(cores=1, ways=1)
        b = Allocation(cores=4, ways=5)
        assert allocation_distance(a, b) == pytest.approx(5.0)

    def test_symmetric(self):
        a = Allocation(cores=2, ways=9)
        b = Allocation(cores=7, ways=3)
        assert allocation_distance(a, b) == allocation_distance(b, a)
