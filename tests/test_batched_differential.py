"""Differential proof: the batched engine is bit-exact vs the oracle.

:mod:`repro.engine.batched` re-implements the per-object
:class:`~repro.sim.colocation.ColocationSim` as a structure-of-arrays
core that advances every server of a sweep in lock step.  Its whole
claim is *exact* equality — not tolerance-based closeness — so every
test here compares full :class:`~repro.sim.colocation.ColocationResult`
objects field by field with ``==`` on raw floats:

* every scalar summary (throughput, SLO fraction, energy, utilization);
* :class:`CapStats` / :class:`ManagerStats` counters;
* :class:`~repro.guard.invariants.GuardReport` including the recorded
  :class:`~repro.guard.invariants.Violation` tuples and check counts;
* every telemetry series, name order, tick times and values.

Coverage spans three manager types (POM, Heracles-balanced,
Heracles-random), a no-BE plan, three fault schedules exercising all
six fault types, record- and enforce-mode guards, the ``engine`` knob
on :func:`~repro.sim.cluster.run_cluster` (dedupe on and off), and a
real mid-sweep SIGKILL resumed under the *other* engine.
"""

import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.core.server_manager import HeraclesLikeManager
from repro.engine.batched import partition_cells, run_batched_cells
from repro.engine.parallel import map_ordered
from repro.engine.select import default_engine
from repro.errors import ConfigError
from repro.evaluation.pipeline import (
    ServerPlan,
    cluster_plans,
    fit_catalog,
    placement_for_policy,
    run_policy,
)
from repro.faults.schedule import (
    FaultSchedule,
    LoadSpike,
    MeterDrift,
    MeterDropout,
    MeterStuckAt,
    ModelStaleness,
    TelemetryGap,
)
from repro.guard.invariants import GuardConfig
from repro.runtime import Checkpoint, run_cluster_checkpointed
from repro.sim.cluster import _run_cell, run_cluster
from repro.sim.colocation import SimConfig

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

#: Scalar result fields compared with ``==`` — every float the result
#: reports.  Kept explicit so a new summary field must be added here
#: (or the schema drift is caught by test_result_fields_covered).
RESULT_FIELDS = (
    "lc_name", "be_name", "duration_s",
    "avg_be_throughput_norm", "avg_be_throughput_abs",
    "avg_lc_load_fraction", "avg_power_w", "power_utilization",
    "energy_kwh", "slo_violation_fraction",
)


@dataclass(frozen=True)
class RandomHeraclesFactory:
    """Content-addressable factory for the randomized Heracles path."""

    seed: int = 3

    def __call__(self, server):
        return HeraclesLikeManager(server, path="random", seed=self.seed)


def assert_outcome_equal(a, b, where=""):
    """Exact equality of two LevelOutcomes, down to every telemetry tick."""
    assert (a.lc_name, a.be_name, a.level) == (b.lc_name, b.be_name, b.level)
    ra, rb = a.result, b.result
    for field in RESULT_FIELDS:
        va, vb = getattr(ra, field), getattr(rb, field)
        assert va == vb, f"{where}: {field}: {va!r} != {vb!r}"
    assert ra.cap_stats == rb.cap_stats, f"{where}: cap_stats"
    assert ra.manager_stats == rb.manager_stats, f"{where}: manager_stats"
    # GuardReport equality covers mode, check counts, violation totals,
    # and every Violation tuple (invariant, time, message, observed,
    # limit) — dataclass == is exact.
    assert ra.guard_report == rb.guard_report, f"{where}: guard_report"
    sa, sb = ra.telemetry._series, rb.telemetry._series
    assert list(sa) == list(sb), f"{where}: series names"
    for name in sa:
        assert sa[name].times == sb[name].times, f"{where}: {name} times"
        assert sa[name].values == sb[name].values, f"{where}: {name} values"


@pytest.fixture(scope="module")
def catalog():
    return fit_catalog(seed=7)


@pytest.fixture(scope="module")
def mixed_plans(catalog):
    """Three manager types plus a no-BE colocation in one sweep."""
    pom = cluster_plans(catalog, placement_for_policy(catalog, "pocolo"), "pocolo")
    her = cluster_plans(catalog, placement_for_policy(catalog, "random"), "random")
    plans = list(pom[:3]) + list(her[:2])
    base = plans[0]
    plans.append(ServerPlan(
        lc_app=base.lc_app, be_app=base.be_app,
        provisioned_power_w=base.provisioned_power_w,
        manager_factory=RandomHeraclesFactory(),
    ))
    plans.append(ServerPlan(
        lc_app=plans[1].lc_app, be_app=None,
        provisioned_power_w=plans[1].provisioned_power_w,
        manager_factory=plans[1].manager_factory,
    ))
    return plans


def _tasks(plans, spec, levels, duration_s, config, faults=None, guard=None):
    return [
        (plan, spec, level, duration_s, config, plan.be_app, faults, guard)
        for plan in plans
        for level in levels
    ]


def _oracle(tasks):
    return [_run_cell(*task) for task in tasks]


class TestUnfaultedDifferential:
    """All manager types, idle through saturated, guard off and on."""

    @pytest.mark.parametrize("guard", [
        None,
        GuardConfig(),
        GuardConfig(deep_check_every=3),
    ], ids=["noguard", "default", "deep3"])
    def test_bit_exact(self, catalog, mixed_plans, guard):
        config = SimConfig(warmup_s=3.0, seed=1)
        tasks = _tasks(
            mixed_plans, catalog.spec, (0.0, 0.3, 0.8), 7.0, config,
            guard=guard,
        )
        groups, fallback = partition_cells(tasks)
        assert not fallback, "every cell must take the batched path"
        assert groups, "partitioning produced no groups"
        for a, b in zip(_oracle(tasks), run_batched_cells(tasks)):
            assert_outcome_equal(a, b, f"guard={guard!r}")

    def test_result_fields_covered(self, catalog, mixed_plans):
        """RESULT_FIELDS stays in sync with the result schema."""
        config = SimConfig(warmup_s=1.0, seed=0)
        task = _tasks(mixed_plans[:1], catalog.spec, (0.5,), 3.0, config)[0]
        result = _run_cell(*task).result
        import dataclasses

        names = {f.name for f in dataclasses.fields(result)}
        uncovered = names - set(RESULT_FIELDS) - {
            "cap_stats", "manager_stats", "guard_report", "telemetry",
        }
        assert not uncovered, (
            f"new ColocationResult fields {sorted(uncovered)} are not "
            "compared by assert_outcome_equal; add them to RESULT_FIELDS"
        )


class TestFaultedDifferential:
    """Every fault type, alone and overlapping, guard off and on."""

    @pytest.fixture(scope="class")
    def schedules(self, catalog):
        stale = catalog.lc_fits[list(catalog.lc_fits)[1]].model
        return {
            "meter-mix": FaultSchedule([
                MeterDrift(start_s=1.0, duration_s=3.0,
                           bias_w=-2.0, rate_w_per_s=-1.5),
                MeterDropout(start_s=4.2, duration_s=1.0),
                MeterStuckAt(start_s=6.0, duration_s=2.0),
                MeterStuckAt(start_s=9.0, duration_s=1.5, value_w=400.0),
            ]),
            "control-mix": FaultSchedule([
                LoadSpike(start_s=2.0, duration_s=2.0, factor=1.8),
                TelemetryGap(start_s=5.0, duration_s=2.0),
                ModelStaleness(start_s=3.0, duration_s=4.0, model=stale),
            ]),
            "everything": FaultSchedule([
                LoadSpike(start_s=1.0, duration_s=1.0, factor=2.5),
                TelemetryGap(start_s=2.0, duration_s=1.0),
                MeterDrift(start_s=3.0, duration_s=6.0,
                           bias_w=1.0, rate_w_per_s=2.0),
                MeterStuckAt(start_s=7.0, duration_s=1.0),
                MeterDropout(start_s=8.5, duration_s=0.8),
                ModelStaleness(start_s=4.0, duration_s=2.0, model=stale),
            ]),
        }

    @pytest.mark.parametrize("name", ["meter-mix", "control-mix", "everything"])
    @pytest.mark.parametrize("guarded", [False, True], ids=["noguard", "guard"])
    def test_bit_exact(self, catalog, mixed_plans, schedules, name, guarded):
        config = SimConfig(warmup_s=2.0, seed=5)
        guard = GuardConfig(deep_check_every=4) if guarded else None
        tasks = _tasks(
            mixed_plans[:-1], catalog.spec, (0.0, 0.4, 0.9), 11.0, config,
            faults=schedules[name], guard=guard,
        )
        _, fallback = partition_cells(tasks)
        assert not fallback
        for a, b in zip(_oracle(tasks), run_batched_cells(tasks)):
            assert_outcome_equal(a, b, f"{name} guarded={guarded}")


class TestGuardReportDifferential:
    """Violating runs: reports and enforce-mode raises must match."""

    def test_record_mode_violations_bit_exact(self, catalog, mixed_plans):
        config = SimConfig(warmup_s=2.0, seed=2)
        strict = GuardConfig(
            cap_margin_w=-40.0, cap_grace_steps=1,
            lc_min_cores=9, lc_min_ways=6,
        )
        tasks = _tasks(
            mixed_plans[:5], catalog.spec, (0.3, 0.8), 9.0, config,
            guard=strict,
        )
        oracle = _oracle(tasks)
        total = sum(o.result.guard_report.total_violations for o in oracle)
        assert total > 0, "scenario must actually violate"
        for a, b in zip(oracle, run_batched_cells(tasks)):
            assert_outcome_equal(a, b, "strict")

    def test_enforce_mode_raise_equivalent(self, catalog, mixed_plans):
        config = SimConfig(warmup_s=2.0, seed=2)
        enforce = GuardConfig(
            mode="enforce", cap_margin_w=-40.0, cap_grace_steps=1,
        )
        tasks = _tasks(
            mixed_plans[:5], catalog.spec, (0.3, 0.8), 9.0, config,
            guard=enforce,
        )

        def outcome(fn, *args, **kwargs):
            try:
                fn(*args, **kwargs)
                return None
            except Exception as exc:  # noqa: BLE001 - comparing raises
                return type(exc).__name__, str(exc)

        oracle = outcome(map_ordered, _run_cell, tasks, workers=1)
        batched = outcome(run_batched_cells, tasks)
        assert oracle is not None, "enforce scenario must raise"
        assert oracle == batched


class TestEngineKnob:
    """run_cluster / run_policy produce identical results per engine."""

    def test_run_cluster_engines_agree(self, catalog, mixed_plans):
        kwargs = dict(
            levels=(0.2, 0.6), duration_s=7.0,
            config=SimConfig(seed=3), guard=GuardConfig(),
        )
        base = run_cluster(mixed_plans, catalog.spec, **kwargs)
        for dedupe in (False, True):
            got = run_cluster(
                mixed_plans, catalog.spec, dedupe=dedupe,
                engine="batched", **kwargs,
            )
            assert len(got.outcomes) == len(base.outcomes)
            for a, b in zip(base.outcomes, got.outcomes):
                assert_outcome_equal(a, b, f"dedupe={dedupe}")

    def test_default_engine_context(self, catalog, mixed_plans):
        kwargs = dict(levels=(0.5,), duration_s=5.0, config=SimConfig(seed=3))
        base = run_cluster(mixed_plans[:2], catalog.spec, **kwargs)
        with default_engine("batched"):
            got = run_cluster(mixed_plans[:2], catalog.spec, **kwargs)
        for a, b in zip(base.outcomes, got.outcomes):
            assert_outcome_equal(a, b, "ctx")

    def test_batched_refuses_process_pool(self, catalog, mixed_plans):
        with pytest.raises(ConfigError, match="workers must be 1"):
            run_cluster(
                mixed_plans[:1], catalog.spec, levels=(0.5,),
                duration_s=3.0, config=SimConfig(seed=0),
                workers=2, engine="batched",
            )

    def test_run_policy_engines_agree(self, catalog):
        kwargs = dict(levels=(0.2, 0.6), duration_s=7.0,
                      sim_config=SimConfig(seed=3))
        base = run_policy(catalog, "pocolo", **kwargs)
        got = run_policy(catalog, "pocolo", engine="batched", **kwargs)
        assert len(base.outcomes) == len(got.outcomes)
        for a, b in zip(base.outcomes, got.outcomes):
            assert_outcome_equal(a, b, "policy")


_SWEEP_SNIPPET = """\
from repro.apps import REFERENCE_SPEC, best_effort_apps, latency_critical_apps
from repro.evaluation.pipeline import HeraclesFactory
from repro.sim.cluster import ServerPlan
from repro.sim.colocation import SimConfig


def build_sweep():
    lcs = latency_critical_apps()
    bes = best_effort_apps()
    plans = [
        ServerPlan(
            lc_app=lcs[lc], be_app=bes[be],
            provisioned_power_w=lcs[lc].peak_server_power_w(),
            manager_factory=HeraclesFactory(),
        )
        for lc, be in [("xapian", "rnn"), ("sphinx", "graph")]
    ]
    kwargs = dict(
        levels=[0.25, 0.5, 0.75], duration_s=150.0, config=SimConfig(seed=11)
    )
    return plans, REFERENCE_SPEC, kwargs
"""

_CHILD_MAIN = _SWEEP_SNIPPET + """

if __name__ == "__main__":
    import sys

    from repro.runtime import run_cluster_checkpointed

    plans, spec, kwargs = build_sweep()
    run_cluster_checkpointed(
        plans, spec, sys.argv[1], resume=True, checkpoint_every=1, **kwargs
    )
"""


class TestCrossEngineResume:
    """A checkpoint written under one engine resumes under the other."""

    def _flatten(self, result):
        return [
            (o.lc_name, o.be_name, o.level,
             tuple(getattr(o.result, f) for f in RESULT_FIELDS))
            for o in result.outcomes
        ]

    def test_partial_checkpoints_cross_resume(
        self, catalog, mixed_plans, tmp_path
    ):
        kwargs = dict(
            levels=(0.2, 0.6, 0.9), duration_s=10.0,
            config=SimConfig(seed=3), guard=GuardConfig(),
        )
        clean = run_cluster_checkpointed(
            mixed_plans, catalog.spec, tmp_path / "clean.ckpt", **kwargs
        )
        # Full batched run equals the object run outright.
        batched = run_cluster_checkpointed(
            mixed_plans, catalog.spec, tmp_path / "batched.ckpt",
            engine="batched", **kwargs,
        )
        for a, b in zip(clean.outcomes, batched.outcomes):
            assert_outcome_equal(a, b, "full-batched")
        # Roll each checkpoint back to a partial state and resume it
        # under the *other* engine: results must not change a bit.
        for source, resume_engine, keep in [
            ("clean.ckpt", "batched", 4),
            ("batched.ckpt", "object", 3),
        ]:
            path = tmp_path / source
            checkpoint = Checkpoint.load(path)
            completed = checkpoint.payload["completed"]
            survivors = {
                i: completed[i] for i in sorted(completed)[:keep]
            }
            Checkpoint(
                run_key=checkpoint.run_key,
                payload={**checkpoint.payload, "completed": survivors},
            ).save(path)
            resumed = run_cluster_checkpointed(
                mixed_plans, catalog.spec, path, resume=True,
                engine=resume_engine, **kwargs,
            )
            for a, b in zip(clean.outcomes, resumed.outcomes):
                assert_outcome_equal(a, b, f"{source}->{resume_engine}")

    def test_batched_refuses_supervisor(self, catalog, mixed_plans, tmp_path):
        from repro.engine.parallel import SupervisedPool

        with pytest.raises(ConfigError, match="SupervisedPool"):
            run_cluster_checkpointed(
                mixed_plans[:1], catalog.spec, tmp_path / "x.ckpt",
                levels=(0.5,), duration_s=3.0, config=SimConfig(seed=0),
                engine="batched", supervisor=SupervisedPool(workers=1),
            )

    def test_sigkill_then_batched_resume(self, tmp_path):
        """A real SIGKILL mid-sweep; the survivor resumes batched."""
        script = tmp_path / "child_sweep.py"
        script.write_text(_CHILD_MAIN)
        ckpt = tmp_path / "sweep.ckpt"
        child = subprocess.Popen(
            [sys.executable, str(script), str(ckpt)],
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 60.0
            progressed = False
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                if ckpt.exists():
                    extra = Checkpoint.load(ckpt).extra
                    if extra.get("cells_done", 0) >= 1:
                        progressed = True
                        break
                time.sleep(0.02)
            assert progressed, (
                "child finished or stalled before the kill: "
                f"{child.stderr.read().decode(errors='replace')}"
            )
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL

        namespace = {}
        exec(_SWEEP_SNIPPET, namespace)
        plans, spec, kwargs = namespace["build_sweep"]()
        resumed = run_cluster_checkpointed(
            plans, spec, ckpt, resume=True, engine="batched", **kwargs
        )
        clean = run_cluster(plans, spec, **kwargs)
        assert len(resumed.outcomes) == len(clean.outcomes) == 6
        for a, b in zip(clean.outcomes, resumed.outcomes):
            assert_outcome_equal(a, b, "sigkill-resume")
