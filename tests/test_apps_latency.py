"""Tests for repro.apps.latency: the tail-latency model."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.latency import (
    SATURATED_LATENCY_FACTOR,
    LatencySlo,
    TailLatencyModel,
)
from repro.errors import ConfigError


@pytest.fixture()
def model():
    return TailLatencyModel(slo=LatencySlo(p95_s=0.5, p99_s=1.0))


class TestLatencySlo:
    def test_valid(self):
        slo = LatencySlo(p95_s=0.010, p99_s=0.020)
        assert slo.p99_s == 0.020

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            LatencySlo(p95_s=0.0, p99_s=1.0)
        with pytest.raises(ConfigError):
            LatencySlo(p95_s=1.0, p99_s=-1.0)

    def test_p95_above_p99_rejected(self):
        with pytest.raises(ConfigError):
            LatencySlo(p95_s=2.0, p99_s=1.0)


class TestTailLatencyModel:
    def test_p99_hits_slo_exactly_at_capacity(self, model):
        assert model.p99_s(load=100.0, capacity=100.0) == pytest.approx(1.0)

    def test_base_latency_at_zero_load(self, model):
        assert model.p99_s(0.0, 100.0) == pytest.approx(model.base_latency_s)
        assert model.base_latency_s == pytest.approx(0.15)

    def test_monotone_in_load(self, model):
        lats = [model.p99_s(load, 100.0) for load in (10, 40, 70, 95, 100)]
        assert lats == sorted(lats)

    def test_zero_capacity_saturates(self, model):
        assert model.p99_s(10.0, 0.0) == SATURATED_LATENCY_FACTOR * 1.0

    def test_overload_saturates_finitely(self, model):
        lat = model.p99_s(1000.0, 100.0)
        assert lat == SATURATED_LATENCY_FACTOR * 1.0

    def test_negative_load_rejected(self, model):
        with pytest.raises(ConfigError):
            model.p99_s(-1.0, 100.0)

    def test_slack_signs(self, model):
        assert model.slack(50.0, 100.0) > 0
        assert model.slack(100.0, 100.0) == pytest.approx(0.0)
        assert model.slack(110.0, 100.0) < 0

    def test_invalid_knee_rejected(self):
        slo = LatencySlo(p95_s=0.5, p99_s=1.0)
        with pytest.raises(ConfigError):
            TailLatencyModel(slo=slo, rho_knee=0.0)
        with pytest.raises(ConfigError):
            TailLatencyModel(slo=slo, rho_knee=1.0)


class TestInverses:
    def test_max_load_for_zero_slack_is_capacity(self, model):
        assert model.max_load_for_slack(100.0, 0.0) == pytest.approx(100.0)

    def test_max_load_for_slack_is_tight(self, model):
        load = model.max_load_for_slack(100.0, 0.10)
        assert model.slack(load, 100.0) == pytest.approx(0.10)

    def test_capacity_for_load_is_tight(self, model):
        cap = model.capacity_for_load(80.0, 0.10)
        assert model.slack(80.0, cap) == pytest.approx(0.10)

    def test_zero_capacity_or_load_edge_cases(self, model):
        assert model.max_load_for_slack(0.0, 0.1) == 0.0
        assert model.capacity_for_load(0.0, 0.1) == 0.0

    def test_invalid_slack_rejected(self, model):
        with pytest.raises(ConfigError):
            model.max_load_for_slack(100.0, 1.0)
        with pytest.raises(ConfigError):
            model.max_load_for_slack(100.0, -0.1)

    @given(
        st.floats(min_value=1.0, max_value=1e5),
        st.floats(min_value=0.0, max_value=0.8),
    )
    def test_roundtrip_capacity_load(self, load, slack_target):
        model = TailLatencyModel(slo=LatencySlo(p95_s=0.5, p99_s=1.0))
        cap = model.capacity_for_load(load, slack_target)
        back = model.max_load_for_slack(cap, slack_target)
        assert back == pytest.approx(load, rel=1e-9)

    @given(st.floats(min_value=0.0, max_value=0.99))
    def test_slack_decreases_with_utilization(self, rho):
        model = TailLatencyModel(slo=LatencySlo(p95_s=0.5, p99_s=1.0))
        assert model.slack(rho * 100.0, 100.0) >= model.slack((rho + 0.01) * 100.0, 100.0)


class TestAgainstCatalogApps:
    def test_capacity_scaling(self, xapian, spec):
        full = spec.full_allocation()
        assert xapian.capacity(full) == pytest.approx(xapian.peak_load)

    def test_lc_app_slo_boundary(self, xapian, spec):
        full = spec.full_allocation()
        assert xapian.meets_slo(xapian.peak_load, full, slack_target=0.0)
        assert not xapian.meets_slo(xapian.peak_load * 1.05, full, slack_target=0.0)

    def test_required_capacity_round_trip(self, xapian):
        load = 0.5 * xapian.peak_load
        cap = xapian.required_capacity(load, 0.10)
        assert xapian.latency.slack(load, cap) == pytest.approx(0.10)
