"""Tests for repro.cost.tco: the Hamilton-style TCO model."""

import pytest

from repro.cost.tco import (
    HOURS_PER_MONTH,
    PolicyOperatingPoint,
    TcoParams,
    compare_policies,
    monthly_tco,
    relative_savings,
)
from repro.errors import ConfigError


@pytest.fixture()
def point():
    return PolicyOperatingPoint(
        name="p", throughput_per_server=1.0,
        provisioned_w_per_server=150.0, avg_power_w_per_server=120.0,
    )


class TestMonthlyTco:
    def test_hand_computed_breakdown(self, point):
        params = TcoParams()
        b = monthly_tco(point, params, reference_throughput=1.0)
        assert b.num_servers == pytest.approx(100_000)
        assert b.servers_usd == pytest.approx(100_000 * 1450 / 36)
        assert b.power_infra_usd == pytest.approx(100_000 * 150 * 9 / 180)
        assert b.energy_usd == pytest.approx(
            100_000 * 120 * 1.1 * HOURS_PER_MONTH * 0.07 / 1000
        )
        assert b.total_usd == pytest.approx(
            b.servers_usd + b.power_infra_usd + b.energy_usd
        )

    def test_server_count_scales_inversely_with_throughput(self, point):
        faster = PolicyOperatingPoint(
            name="fast", throughput_per_server=2.0,
            provisioned_w_per_server=150.0, avg_power_w_per_server=120.0,
        )
        slow_b = monthly_tco(point, reference_throughput=1.0)
        fast_b = monthly_tco(faster, reference_throughput=1.0)
        assert fast_b.num_servers == pytest.approx(slow_b.num_servers / 2)
        assert fast_b.total_usd < slow_b.total_usd

    def test_higher_provisioning_costs_more(self, point):
        fat = PolicyOperatingPoint(
            name="fat", throughput_per_server=1.0,
            provisioned_w_per_server=185.0, avg_power_w_per_server=120.0,
        )
        assert monthly_tco(fat).power_infra_usd > monthly_tco(point).power_infra_usd
        assert monthly_tco(fat).servers_usd == monthly_tco(point).servers_usd

    def test_higher_draw_costs_energy_only(self, point):
        hot = PolicyOperatingPoint(
            name="hot", throughput_per_server=1.0,
            provisioned_w_per_server=150.0, avg_power_w_per_server=150.0,
        )
        assert monthly_tco(hot).energy_usd > monthly_tco(point).energy_usd
        assert monthly_tco(hot).power_infra_usd == monthly_tco(point).power_infra_usd

    def test_invalid_reference_rejected(self, point):
        with pytest.raises(ConfigError):
            monthly_tco(point, reference_throughput=0.0)


class TestParamsValidation:
    def test_paper_defaults(self):
        params = TcoParams()
        assert params.baseline_num_servers == 100_000
        assert params.server_cost_usd == 1450.0
        assert params.power_infra_usd_per_w == 9.0
        assert params.energy_usd_per_kwh == 0.07
        assert params.pue == 1.1

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            TcoParams(baseline_num_servers=0)
        with pytest.raises(ConfigError):
            TcoParams(pue=0.9)
        with pytest.raises(ConfigError):
            TcoParams(server_cost_usd=-5.0)
        with pytest.raises(ConfigError):
            TcoParams(infra_amortization_months=0)

    def test_operating_point_validation(self):
        with pytest.raises(ConfigError):
            PolicyOperatingPoint("x", 0.0, 150.0, 100.0)
        with pytest.raises(ConfigError):
            PolicyOperatingPoint("x", 1.0, 0.0, 100.0)
        with pytest.raises(ConfigError):
            PolicyOperatingPoint("x", 1.0, 150.0, -1.0)


class TestComparePolicies:
    @pytest.fixture()
    def points(self):
        return [
            PolicyOperatingPoint("random", 0.85, 150.5, 146.0),
            PolicyOperatingPoint("pocolo", 0.95, 150.5, 136.0),
        ]

    def test_constant_throughput_across_policies(self, points):
        breakdowns = compare_policies(points, reference="random")
        work_random = breakdowns["random"].num_servers * 0.85
        work_pocolo = breakdowns["pocolo"].num_servers * 0.95
        assert work_random == pytest.approx(work_pocolo)

    def test_better_policy_cheaper(self, points):
        breakdowns = compare_policies(points, reference="random")
        assert breakdowns["pocolo"].total_usd < breakdowns["random"].total_usd

    def test_default_reference_is_first(self, points):
        breakdowns = compare_policies(points)
        assert breakdowns["random"].num_servers == pytest.approx(100_000)

    def test_duplicate_names_rejected(self, points):
        with pytest.raises(ConfigError):
            compare_policies(points + [points[0]])

    def test_unknown_reference_rejected(self, points):
        with pytest.raises(ConfigError):
            compare_policies(points, reference="ghost")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            compare_policies([])


class TestRelativeSavings:
    def test_savings_formula(self):
        points = [
            PolicyOperatingPoint("a", 1.0, 150.0, 120.0),
            PolicyOperatingPoint("b", 1.25, 150.0, 120.0),
        ]
        breakdowns = compare_policies(points, reference="a")
        savings = relative_savings(breakdowns, winner="b")
        expected = 1.0 - breakdowns["b"].total_usd / breakdowns["a"].total_usd
        assert savings["a"] == pytest.approx(expected)
        assert "b" not in savings

    def test_unknown_winner_rejected(self):
        points = [PolicyOperatingPoint("a", 1.0, 150.0, 120.0)]
        breakdowns = compare_policies(points)
        with pytest.raises(ConfigError):
            relative_savings(breakdowns, winner="zzz")
