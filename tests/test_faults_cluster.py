"""Cluster crash/recovery handling and displaced-BE re-placement.

The ISSUE acceptance criterion lives here: a cluster run with one server
crash completes without raising, re-places the displaced best-effort app
onto a survivor, and retains nonzero BE throughput.
"""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    ClusterFaultPlan,
    ClusterFaultReport,
    FaultSchedule,
    MeterStuckAt,
    Replacement,
    ServerCrash,
)
from repro.sim import SimConfig, run_cluster

FAST = SimConfig(seed=0, warmup_s=2.0)


@pytest.fixture(scope="module")
def plans(catalog):
    from repro.evaluation import cluster_plans, placement_for_policy

    placement = placement_for_policy(catalog, "pocolo")
    return cluster_plans(catalog, placement, "pocolo")


class TestFaultPlanTypes:
    def test_crash_validation(self):
        with pytest.raises(ConfigError):
            ServerCrash("xapian", at_level_index=-1)
        with pytest.raises(ConfigError):
            ServerCrash("xapian", at_level_index=2, recover_at_level_index=2)
        with pytest.raises(ConfigError):
            ServerCrash("xapian", at_level_index=2, recover_at_level_index=1)

    def test_one_crash_per_server(self):
        with pytest.raises(ConfigError):
            ClusterFaultPlan(crashes=(
                ServerCrash("xapian", at_level_index=1),
                ServerCrash("xapian", at_level_index=2),
            ))

    def test_event_queries(self):
        plan = ClusterFaultPlan(crashes=(
            ServerCrash("xapian", at_level_index=1, recover_at_level_index=3),
            ServerCrash("tpcc", at_level_index=2),
        ))
        assert [c.lc_name for c in plan.crashes_at(1)] == ["xapian"]
        assert plan.crashes_at(0) == ()
        assert [c.lc_name for c in plan.recoveries_at(3)] == ["xapian"]
        assert plan.recoveries_at(2) == ()

    def test_report_placement_counters(self):
        report = ClusterFaultReport(replacements=[
            Replacement("rnn", "xapian", "tpcc", 1),
            Replacement("graph", "sphinx", None, 1),
        ])
        assert report.displaced_placed == 1
        assert report.displaced_parked == 1


class TestClusterCrash:
    def test_crash_run_completes_and_replaces(self, plans, catalog):
        """The acceptance criterion: crash -> re-place -> keep earning."""
        crashed = plans[0].lc_app.name
        fault_plan = ClusterFaultPlan(
            crashes=(ServerCrash(crashed, at_level_index=1),)
        )
        levels = [0.3, 0.6]
        run = run_cluster(plans, catalog.spec, levels=levels, duration_s=6.0,
                          config=FAST, fault_plan=fault_plan)
        report = run.fault_report
        assert report is not None
        assert report.crashes_handled == 1
        # The displaced BE found a surviving host.
        assert len(report.replacements) == 1
        repl = report.replacements[0]
        assert repl.from_lc == crashed
        survivors = {p.lc_app.name for p in plans} - {crashed}
        assert repl.to_lc in survivors
        assert report.displaced_placed == 1
        # The crashed server's remaining cells are degraded, and the
        # cluster still earns BE throughput on the survivors.
        assert report.degraded_cells == 1  # one remaining level
        assert run.cluster_be_throughput() > 0.0
        # The crashed server ran level 0 but not level 1.
        cells = [(o.lc_name, o.level) for o in run.outcomes]
        assert (crashed, levels[0]) in cells
        assert (crashed, levels[1]) not in cells

    def test_survivor_time_shares_its_slice(self, plans, catalog):
        two = plans[:2]
        crashed, survivor = two[0].lc_app.name, two[1].lc_app.name
        fault_plan = ClusterFaultPlan(
            crashes=(ServerCrash(crashed, at_level_index=1),)
        )
        levels = [0.3, 0.6]
        run = run_cluster(two, catalog.spec, levels=levels, duration_s=6.0,
                          config=FAST, fault_plan=fault_plan)
        after = [o for o in run.outcomes
                 if o.lc_name == survivor and o.level == levels[1]]
        # Two co-runners on the survivor: its own BE plus the displaced
        # one, each on an equal share of the cell's duration.
        assert len(after) == 2
        assert {o.be_name for o in after} == {two[0].be_app.name,
                                              two[1].be_app.name}
        assert all(o.result.duration_s == pytest.approx(3.0) for o in after)

    def test_recovery_rejoins_empty_handed(self, plans, catalog):
        two = plans[:2]
        crashed = two[0].lc_app.name
        fault_plan = ClusterFaultPlan(crashes=(
            ServerCrash(crashed, at_level_index=1, recover_at_level_index=2),
        ))
        levels = [0.3, 0.5, 0.7]
        run = run_cluster(two, catalog.spec, levels=levels, duration_s=6.0,
                          config=FAST, fault_plan=fault_plan)
        report = run.fault_report
        assert report.crashes_handled == 1
        assert report.recoveries_handled == 1
        rejoined = [o for o in run.outcomes
                    if o.lc_name == crashed and o.level == levels[2]]
        # Back in service, but without a BE co-runner: the displaced app
        # stays where re-placement put it (migration is not free).
        assert len(rejoined) == 1
        assert rejoined[0].be_name is None

    def test_no_survivors_parks_the_displaced(self, plans, catalog):
        two = plans[:2]
        fault_plan = ClusterFaultPlan(crashes=(
            ServerCrash(two[0].lc_app.name, at_level_index=1),
            ServerCrash(two[1].lc_app.name, at_level_index=1),
        ))
        levels = [0.3, 0.6]
        run = run_cluster(two, catalog.spec, levels=levels, duration_s=6.0,
                          config=FAST, fault_plan=fault_plan)
        report = run.fault_report
        assert report.crashes_handled == 2
        assert report.displaced_parked == 2
        assert report.displaced_placed == 0
        assert report.degraded_cells == 2  # both servers, one level each

    def test_unknown_crash_name_rejected(self, plans, catalog):
        fault_plan = ClusterFaultPlan(
            crashes=(ServerCrash("no-such-server", at_level_index=0),)
        )
        with pytest.raises(ConfigError):
            run_cluster(plans[:2], catalog.spec, levels=[0.3],
                        duration_s=6.0, config=FAST, fault_plan=fault_plan)

    def test_cell_faults_reach_every_cell(self, plans, catalog):
        fault_plan = ClusterFaultPlan(cell_faults=FaultSchedule([
            MeterStuckAt(start_s=1.0, duration_s=None)
        ]))
        run = run_cluster(plans[:1], catalog.spec, levels=[0.5],
                          duration_s=6.0, config=FAST, fault_plan=fault_plan)
        outcome = run.outcomes[0]
        assert outcome.result.cap_stats.watchdog_trips >= 1
        assert outcome.result.cap_stats.safe_mode_steps > 0

    def test_faultfree_runs_have_no_report(self, plans, catalog):
        run = run_cluster(plans[:1], catalog.spec, levels=[0.5],
                          duration_s=6.0, config=FAST)
        assert run.fault_report is None

    def test_all_servers_crashed_is_well_formed(self, plans, catalog):
        """Every server down at level 0: zero cells, truthful zeros.

        The run must not raise and must not emit NaN — an empty outcome
        list aggregates to "nothing served, nothing drawn", and the
        policy summary stays finite so downstream TCO tables render.
        """
        import math

        from repro.evaluation.pipeline import summarize_policy

        fault_plan = ClusterFaultPlan(crashes=tuple(
            ServerCrash(p.lc_app.name, at_level_index=0) for p in plans
        ))
        levels = [0.3, 0.6]
        run = run_cluster(plans, catalog.spec, levels=levels, duration_s=6.0,
                          config=FAST, fault_plan=fault_plan)
        assert run.outcomes == []
        report = run.fault_report
        assert report.crashes_handled == len(plans)
        assert report.degraded_cells == len(plans) * len(levels)
        assert run.cluster_be_throughput() == 0.0
        assert run.cluster_power_utilization() == 0.0
        assert run.cluster_violation_fraction() == 0.0
        summary = summarize_policy("pocolo", run, catalog)
        assert summary.throughput_per_server == 0.0
        assert summary.avg_power_w_per_server == 0.0
        assert math.isfinite(summary.power_utilization)
        assert math.isfinite(summary.provisioned_w_per_server)


class TestServerRejoin:
    """Repair events: rejoined capacity reopens BE re-placement."""

    def test_rejoin_validation(self):
        from repro.faults import ServerRejoin

        with pytest.raises(ConfigError):
            ServerRejoin("xapian", at_level_index=-1)
        # A rejoin must repair an actual crash...
        with pytest.raises(ConfigError):
            ClusterFaultPlan(rejoins=(ServerRejoin("xapian", 2),))
        # ...must follow it...
        with pytest.raises(ConfigError):
            ClusterFaultPlan(
                crashes=(ServerCrash("xapian", at_level_index=2),),
                rejoins=(ServerRejoin("xapian", at_level_index=2),),
            )
        # ...and cannot double up with a recovery.
        with pytest.raises(ConfigError):
            ClusterFaultPlan(
                crashes=(ServerCrash(
                    "xapian", at_level_index=1, recover_at_level_index=3,
                ),),
                rejoins=(ServerRejoin("xapian", at_level_index=2),),
            )
        plan = ClusterFaultPlan(
            crashes=(ServerCrash("xapian", at_level_index=1),),
            rejoins=(ServerRejoin("xapian", at_level_index=3),),
        )
        assert [r.lc_name for r in plan.rejoins_at(3)] == ["xapian"]
        assert plan.rejoins_at(2) == ()

    def test_rejoin_replaces_parked_displaced(self, plans, catalog):
        """Total blackout, one repair: a parked BE lands on the rejoin."""
        from repro.faults import ServerRejoin

        two = plans[:2]
        rejoined = two[1].lc_app.name
        fault_plan = ClusterFaultPlan(
            crashes=(
                ServerCrash(two[0].lc_app.name, at_level_index=1),
                ServerCrash(rejoined, at_level_index=1),
            ),
            rejoins=(ServerRejoin(rejoined, at_level_index=3),),
        )
        levels = [0.3, 0.5, 0.6, 0.7]
        run = run_cluster(two, catalog.spec, levels=levels, duration_s=6.0,
                          config=FAST, fault_plan=fault_plan)
        report = run.fault_report
        assert report.crashes_handled == 2
        assert report.rejoins_handled == 1
        # Both BEs parked at the crash; the repair re-placed one of them.
        landed = [
            r for r in report.replacements
            if r.to_lc == rejoined and r.at_level_index == 3
        ]
        assert len(landed) == 1
        back = [o for o in run.outcomes
                if o.lc_name == rejoined and o.level == levels[3]]
        assert len(back) == 1
        assert back[0].be_name == landed[0].be_name
        assert back[0].result.avg_be_throughput_norm > 0.0

    def test_rejoin_with_nothing_parked_is_empty_handed(self, plans, catalog):
        """With survivors, re-placement already won; the rejoin hosts
        nothing (migration is not free, same rule as recovery)."""
        from repro.faults import ServerRejoin

        crashed = plans[0].lc_app.name
        fault_plan = ClusterFaultPlan(
            crashes=(ServerCrash(crashed, at_level_index=1),),
            rejoins=(ServerRejoin(crashed, at_level_index=2),),
        )
        levels = [0.3, 0.5, 0.7]
        run = run_cluster(plans[:3], catalog.spec, levels=levels,
                          duration_s=6.0, config=FAST, fault_plan=fault_plan)
        report = run.fault_report
        assert report.rejoins_handled == 1
        assert report.displaced_parked == 0
        back = [o for o in run.outcomes
                if o.lc_name == crashed and o.level == levels[2]]
        assert len(back) == 1
        assert back[0].be_name is None

    def test_still_unplaced_bes_stay_parked(self, plans, catalog):
        """A rejoin can absorb only what fits; the rest stays parked."""
        from repro.faults import ServerRejoin

        three = plans[:3]
        rejoined = three[2].lc_app.name
        fault_plan = ClusterFaultPlan(
            crashes=tuple(
                ServerCrash(p.lc_app.name, at_level_index=1) for p in three
            ),
            rejoins=(ServerRejoin(rejoined, at_level_index=2),),
        )
        levels = [0.3, 0.5, 0.7]
        run = run_cluster(three, catalog.spec, levels=levels, duration_s=6.0,
                          config=FAST, fault_plan=fault_plan)
        report = run.fault_report
        assert report.rejoins_handled == 1
        placed_after = [
            r for r in report.replacements
            if r.at_level_index == 2 and r.to_lc is not None
        ]
        unplaced_after = [
            r for r in report.replacements
            if r.at_level_index == 2 and r.to_lc is None
        ]
        # One server's worth of capacity came back for three parked BEs.
        assert len(placed_after) >= 1
        assert len(unplaced_after) >= 1
