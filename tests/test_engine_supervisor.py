"""Tests for the engine's failure handling: error context + supervision.

Covers the two halves of crash-tolerant execution:

* ``map_ordered`` wraps a task exception in ``ExecutionError`` naming
  the failing task's index and arguments (serial and pooled paths);
* ``SupervisedPool`` survives SIGKILL'd workers and hung tasks by
  rebuilding the pool and re-submitting only the lost tasks, degrading
  to in-process serial execution when the pool keeps dying — with the
  result list always bit-identical to the unsupervised map.
"""

import os
import pathlib
import time

import pytest

from repro.engine.parallel import SupervisedPool, SupervisorStats, map_ordered
from repro.errors import ConfigError, ExecutionError, ReproError


def double(x):
    return 2 * x


def boom(x):
    if x == 3:
        raise ValueError(f"cannot handle {x}")
    return x


def boom_chained(x):
    """Fail with a ``raise ... from`` chain, like a degraded cell does."""
    try:
        raise KeyError(f"stale-model-{x}")
    except KeyError as exc:
        raise ValueError("refit failed") from exc


def crash_once(x, flag_dir):
    """SIGKILL the hosting process the first time task 2 runs."""
    flag = pathlib.Path(flag_dir) / f"crashed-{x}"
    if x == 2 and not flag.exists():
        flag.write_text("dying\n")
        os.kill(os.getpid(), 9)
    return 10 * x


def crash_in_worker(x, parent_pid):
    """Die whenever executed outside the parent process."""
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), 9)
    return x + 100


def hang_once(x, flag_dir):
    """Sleep far past the timeout the first time task 1 runs."""
    flag = pathlib.Path(flag_dir) / f"hung-{x}"
    if x == 1 and not flag.exists():
        flag.write_text("hanging\n")
        time.sleep(30.0)
    return -x


class TestMapOrderedErrorContext:
    def test_serial_failure_names_index_and_args(self):
        with pytest.raises(ExecutionError, match=r"task 3 of 5.*boom.*ValueError.*args=\(3\)"):
            map_ordered(boom, [(i,) for i in range(5)])

    def test_pool_failure_names_index_and_args(self):
        with pytest.raises(ExecutionError, match=r"task 3 of 5.*args=\(3\)"):
            map_ordered(boom, [(i,) for i in range(5)], workers=2)

    def test_original_exception_is_chained(self):
        with pytest.raises(ExecutionError) as excinfo:
            map_ordered(boom, [(3,)])
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_execution_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            map_ordered(boom, [(3,)])

    def test_long_arguments_are_truncated(self):
        with pytest.raises(ExecutionError) as excinfo:
            map_ordered(boom, [(3,), ("x" * 500,)])
        assert len(str(excinfo.value)) < 400

    def test_serial_failure_names_the_root_cause(self):
        with pytest.raises(
            ExecutionError,
            match=r"root cause: KeyError: 'stale-model-0'",
        ):
            map_ordered(boom_chained, [(0,)])

    def test_pool_failure_names_the_root_cause(self):
        # Pickling strips __cause__ from pooled results; the message is
        # the only place the originating exception survives.
        with pytest.raises(
            ExecutionError,
            match=r"root cause: KeyError: 'stale-model-1'",
        ):
            map_ordered(boom_chained, [(1,)], workers=2)

    def test_unchained_failure_omits_the_root_cause_suffix(self):
        with pytest.raises(ExecutionError) as excinfo:
            map_ordered(boom, [(3,)])
        assert "root cause" not in str(excinfo.value)


class TestSupervisedPoolSerial:
    def test_matches_map_ordered(self):
        tasks = [(i,) for i in range(6)]
        pool = SupervisedPool(workers=1)
        assert pool.map_ordered(double, tasks) == map_ordered(double, tasks)
        assert pool.stats.pool_rebuilds == 0
        assert pool.stats.degraded_to_serial == 0

    def test_on_result_fires_in_order(self):
        seen = []
        SupervisedPool(workers=1).map_ordered(
            double, [(i,) for i in range(4)],
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert seen == [(0, 0), (1, 2), (2, 4), (3, 6)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            SupervisedPool(workers=0)
        with pytest.raises(ConfigError):
            SupervisedPool(max_rebuilds=-1)
        with pytest.raises(ConfigError):
            SupervisedPool(backoff_base_s=2.0, backoff_cap_s=1.0)
        with pytest.raises(ConfigError):
            SupervisedPool(task_timeout_s=0.0)


class TestSupervisedPoolCrashes:
    def test_worker_sigkill_is_survived(self, tmp_path):
        pool = SupervisedPool(workers=2, backoff_base_s=0.01, backoff_cap_s=0.05)
        out = pool.map_ordered(crash_once, [(i, str(tmp_path)) for i in range(5)])
        assert out == [0, 10, 20, 30, 40]
        assert pool.stats.pool_rebuilds >= 1
        assert pool.stats.tasks_resubmitted >= 1
        assert pool.stats.tasks_completed == 5
        assert pool.stats.backoff_s_total > 0.0

    def test_only_lost_tasks_are_resubmitted(self, tmp_path):
        pool = SupervisedPool(workers=1 + 1, backoff_base_s=0.0, backoff_cap_s=0.0)
        pool.map_ordered(crash_once, [(i, str(tmp_path)) for i in range(5)])
        # Results collected before the crash are never re-run: strictly
        # fewer than all five tasks come back for the second generation.
        assert pool.stats.tasks_resubmitted < 5

    def test_degrades_to_serial_when_pool_keeps_dying(self):
        sleeps = []
        pool = SupervisedPool(
            workers=2, max_rebuilds=2,
            backoff_base_s=0.05, backoff_cap_s=0.2,
            sleep=sleeps.append,
        )
        tasks = [(i, os.getpid()) for i in range(3)]
        out = pool.map_ordered(crash_in_worker, tasks)
        assert out == [100, 101, 102]  # finished in-process
        assert pool.stats.degraded_to_serial == 1
        assert pool.stats.pool_rebuilds == 3  # 2 retries + the final strike
        # Capped exponential backoff: 0.05, 0.1 (cap 0.2 never reached).
        assert sleeps == [pytest.approx(0.05), pytest.approx(0.1)]

    def test_backoff_is_capped(self):
        sleeps = []
        pool = SupervisedPool(
            workers=2, max_rebuilds=4,
            backoff_base_s=0.05, backoff_cap_s=0.12,
            sleep=sleeps.append,
        )
        pool.map_ordered(crash_in_worker, [(0, os.getpid())])
        assert sleeps == [
            pytest.approx(0.05), pytest.approx(0.1),
            pytest.approx(0.12), pytest.approx(0.12),
        ]

    def test_hung_task_times_out_and_completes(self, tmp_path):
        pool = SupervisedPool(
            workers=2, task_timeout_s=1.0,
            backoff_base_s=0.0, backoff_cap_s=0.0,
        )
        out = pool.map_ordered(hang_once, [(i, str(tmp_path)) for i in range(3)])
        assert out == [0, -1, -2]
        assert pool.stats.worker_timeouts >= 1
        assert pool.stats.pool_rebuilds >= 1

    def test_task_exception_is_not_retried(self):
        pool = SupervisedPool(workers=2)
        with pytest.raises(ExecutionError, match=r"task 3 of 5"):
            pool.map_ordered(boom, [(i,) for i in range(5)])
        assert pool.stats.pool_rebuilds == 0
        assert pool.stats.tasks_resubmitted == 0

    def test_stats_start_at_zero(self):
        stats = SupervisorStats()
        assert stats == SupervisorStats(0, 0, 0, 0, 0, 0.0)
