"""Model-distrust fallback, solver fallback, and degradation reporting.

The POM manager must notice a model that keeps over-promising capacity
and step back to Heracles-style feedback; the placement stack must keep
producing feasible assignments when the optimal solver fails; and the
degradation counters must surface in the reporting layer.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import format_degradation
from repro.core.placement import assign_with_fallback, pocolo_placement
from repro.core.server_manager import ManagerStats, PowerOptimizedManager
from repro.errors import ConfigError, SolverError
from repro.faults import FaultSchedule, ModelStaleness
from repro.hwmodel.capping import CapStats
from repro.sim import ColocationSim, SimConfig, build_colocated_server
from repro.workloads import ConstantTrace


def overconfident(model, factor=3.0):
    """A mis-fit that claims ``factor``x the real capacity everywhere."""
    return replace(model, perf=replace(model.perf, alpha0=model.perf.alpha0 * factor))


def build_manager(catalog, model, **kwargs):
    lc = catalog.lc_apps["xapian"]
    be = catalog.be_apps["rnn"]
    server = build_colocated_server(
        catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(), be_app=be
    )
    return PowerOptimizedManager(server, model=model, **kwargs), lc


class TestModelDistrust:
    def test_repeated_misses_enter_the_fallback(self, catalog):
        stale = overconfident(catalog.lc_fits["xapian"].model)
        manager, lc = build_manager(catalog, stale)
        load = 0.3 * lc.peak_load
        # Step 1 records the model's promise; each following starved step
        # (slack below target while the promised capacity covers the
        # load) is a miss.  distrust_after=3 misses trip the fallback.
        for _ in range(4):
            manager.control_step(load, -0.05)
        assert manager.distrusts_model
        assert manager.stats.model_fallbacks == 1
        assert manager.stats.model_fallback_steps >= 1

    def test_retrust_after_the_holdoff(self, catalog):
        stale = overconfident(catalog.lc_fits["xapian"].model)
        manager, lc = build_manager(
            catalog, stale, distrust_after=3, retrust_after=5
        )
        load = 0.3 * lc.peak_load
        for _ in range(4):
            manager.control_step(load, -0.05)
        assert manager.distrusts_model
        # Healthy in-band slack burns down the holdoff; the model then
        # gets another chance.
        for _ in range(5):
            manager.control_step(load, 0.30)
        assert not manager.distrusts_model
        # A persistently bad model re-trips after further misses.
        for _ in range(5):
            manager.control_step(load, -0.05)
        assert manager.stats.model_fallbacks == 2

    def test_load_surge_is_not_a_model_miss(self, catalog):
        # Starvation while the load exceeds the promised capacity is the
        # feedback loop's normal business, not model distrust.
        manager, lc = build_manager(catalog, catalog.lc_fits["xapian"].model)
        surge = 2.0 * lc.peak_load
        for _ in range(10):
            manager.control_step(surge, -0.2)
        assert not manager.distrusts_model
        assert manager.stats.model_fallbacks == 0

    def test_fallback_steps_counted_in_stats(self, catalog):
        stale = overconfident(catalog.lc_fits["xapian"].model)
        manager, lc = build_manager(
            catalog, stale, distrust_after=2, retrust_after=6
        )
        load = 0.3 * lc.peak_load
        for _ in range(12):
            manager.control_step(load, -0.05)
        stats = manager.stats
        assert stats.model_fallback_steps >= 6
        assert 0.0 < stats.model_fallback_fraction <= 1.0
        assert stats.model_fallback_fraction == pytest.approx(
            stats.model_fallback_steps / stats.control_steps
        )

    def test_pacing_validation(self, catalog):
        model = catalog.lc_fits["xapian"].model
        with pytest.raises(ConfigError):
            build_manager(catalog, model, distrust_after=0)
        with pytest.raises(ConfigError):
            build_manager(catalog, model, retrust_after=0)

    def test_stale_model_fault_triggers_fallback_in_sim(self, catalog):
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["rnn"]
        true_model = catalog.lc_fits["xapian"].model
        schedule = FaultSchedule([
            ModelStaleness(start_s=10.0, duration_s=20.0,
                           model=overconfident(true_model)),
        ])
        server = build_colocated_server(
            catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(),
            be_app=be,
        )
        manager = PowerOptimizedManager(server, model=true_model)
        sim = ColocationSim(
            server=server, lc_app=lc, trace=ConstantTrace(0.5),
            manager=manager, be_app=be, config=SimConfig(seed=0),
            faults=schedule,
        )
        result = sim.run(duration_s=40.0)
        assert result.manager_stats.model_fallbacks >= 1
        # The true model is restored after the window; the run ends
        # trusting it again and the SLO is not in sustained violation.
        assert sim.manager.model is true_model
        assert result.slo_violation_fraction < 0.5


class TestSolverFallback:
    def test_retries_then_greedy_fallback(self):
        values = np.array([[3.0, 1.0], [2.0, 4.0]])
        # An unknown method fails with SolverError on every attempt, so
        # the wrapper exhausts its retries and hands over to greedy.
        assignment, total, method, fallbacks = assign_with_fallback(
            values, method="bogus", retries=2
        )
        assert method == "greedy-fallback"
        assert fallbacks == 3  # 1 initial try + 2 retries, all failed
        assert assignment == [0, 1]
        assert total == pytest.approx(7.0)

    def test_successful_solve_reports_no_fallbacks(self):
        values = np.array([[3.0, 1.0], [2.0, 4.0]])
        assignment, total, method, fallbacks = assign_with_fallback(values)
        assert method == "lp"
        assert fallbacks == 0
        assert assignment == [0, 1]

    def test_nan_cells_sanitized_for_the_fallback(self):
        values = np.array([[np.nan, 1.0], [2.0, np.nan]])
        assignment, total, method, fallbacks = assign_with_fallback(
            values, method="bogus", retries=0
        )
        assert method == "greedy-fallback"
        # NaN cells are worth nothing, not un-placeable.
        assert assignment == [1, 0]
        assert total == pytest.approx(3.0)

    def test_unrecoverable_failure_raises_chained_solver_error(self):
        empty = np.empty((0, 0))
        with pytest.raises(SolverError):
            assign_with_fallback(empty, method="bogus", retries=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            assign_with_fallback(np.ones((2, 2)), retries=-1)

    def test_pocolo_placement_records_fallbacks(self, catalog):
        matrix = catalog.performance_matrix()
        decision = pocolo_placement(matrix, method="bogus", retries=1)
        assert decision.method == "greedy-fallback"
        assert decision.solver_fallbacks == 2
        assert set(decision.mapping) == set(matrix.be_names)
        clean = pocolo_placement(matrix)
        assert clean.solver_fallbacks == 0
        assert clean.method == "lp"


class TestDegradationReporting:
    def test_format_degradation_renders_counters(self):
        cap = CapStats(samples=100, over_cap_samples=5, safe_mode_steps=20,
                       safe_mode_entries=1, watchdog_trips=1)
        mgr = ManagerStats(control_steps=50, model_fallbacks=2,
                           model_fallback_steps=15, solver_fallbacks=1)
        table = format_degradation([("faulted", cap, mgr)])
        assert "Degradation under faults" in table
        assert "faulted" in table
        lines = table.splitlines()
        assert "safe steps" in lines[1] and "model fb" in lines[1]
        row = lines[-1]
        assert "20" in row and "0.200" in row  # safe steps + safe frac
        assert "0.300" in row  # model fallback fraction (15/50)

    def test_row_shape_validation(self):
        with pytest.raises(ConfigError):
            format_degradation([("just-a-label",)])

    def test_stats_fractions_empty_safe(self):
        assert CapStats().safe_mode_fraction == 0.0
        assert ManagerStats().model_fallback_fraction == 0.0
