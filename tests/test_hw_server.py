"""Tests for repro.hwmodel.server: the two-tenant server facade."""

import pytest

from repro.errors import AllocationError, ConfigError
from repro.hwmodel.server import PRIMARY, SECONDARY, Server
from repro.hwmodel.spec import Allocation


class FlatPowerModel:
    """A fake tenant drawing a fixed wattage per core and way."""

    def __init__(self, per_core=2.0, per_way=1.0):
        self.per_core = per_core
        self.per_way = per_way

    def active_power_w(self, alloc):
        return alloc.cores * self.per_core + alloc.ways * self.per_way


@pytest.fixture()
def server(spec):
    s = Server(spec, provisioned_power_w=132.0)
    s.attach("lc", FlatPowerModel(), role=PRIMARY)
    s.attach("be", FlatPowerModel(per_core=3.0), role=SECONDARY)
    return s


class TestTenantLifecycle:
    def test_roles_resolve(self, server):
        assert server.primary_tenant() == "lc"
        assert server.secondary_tenant() == "be"
        assert set(server.tenants()) == {"lc", "be"}

    def test_two_primaries_rejected(self, spec):
        s = Server(spec, provisioned_power_w=100.0)
        s.attach("a", FlatPowerModel(), role=PRIMARY)
        with pytest.raises(AllocationError):
            s.attach("b", FlatPowerModel(), role=PRIMARY)

    def test_duplicate_tenant_rejected(self, server):
        with pytest.raises(AllocationError):
            server.attach("lc", FlatPowerModel())

    def test_unknown_role_rejected(self, spec):
        s = Server(spec, provisioned_power_w=100.0)
        with pytest.raises(ConfigError):
            s.attach("x", FlatPowerModel(), role="bystander")

    def test_detach_releases_resources(self, server):
        server.apply_allocation("lc", Allocation(cores=4, ways=6))
        server.detach("lc")
        assert server.primary_tenant() is None
        assert server.spare_allocation().cores == 12

    def test_unknown_tenant_errors(self, server):
        with pytest.raises(AllocationError):
            server.allocation_of("ghost")
        with pytest.raises(AllocationError):
            server.detach("ghost")

    def test_invalid_provisioned_power(self, spec):
        with pytest.raises(ConfigError):
            Server(spec, provisioned_power_w=0.0)


class TestAllocation:
    def test_apply_and_read_back(self, server):
        applied = server.apply_allocation("lc", Allocation(cores=3, ways=5, freq_ghz=1.8))
        assert applied.cores == 3
        assert applied.ways == 5
        assert applied.freq_ghz == pytest.approx(1.8)

    def test_joint_capacity_enforced_on_cores(self, server):
        server.apply_allocation("lc", Allocation(cores=8, ways=5))
        with pytest.raises(AllocationError):
            server.apply_allocation("be", Allocation(cores=5, ways=5))

    def test_joint_capacity_enforced_on_ways(self, server):
        server.apply_allocation("lc", Allocation(cores=2, ways=15))
        with pytest.raises(AllocationError):
            server.apply_allocation("be", Allocation(cores=2, ways=6))

    def test_spare_allocation_complements(self, server):
        server.apply_allocation("lc", Allocation(cores=5, ways=8))
        spare = server.spare_allocation()
        assert spare.cores == 7
        assert spare.ways == 12

    def test_spare_empty_when_any_axis_exhausted(self, server, spec):
        server.apply_allocation("lc", Allocation(cores=spec.cores, ways=5))
        assert server.spare_allocation().is_empty

    def test_release_allocation_keeps_tenant(self, server):
        server.apply_allocation("lc", Allocation(cores=4, ways=4))
        server.release_allocation("lc")
        assert server.allocation_of("lc").is_empty
        assert "lc" in server.tenants()

    def test_duty_cycle_round_trips(self, server):
        server.apply_allocation("be", Allocation(cores=2, ways=2, duty_cycle=0.6))
        assert server.allocation_of("be").duty_cycle == pytest.approx(0.6)

    def test_empty_allocation_parks_tenant(self, server):
        server.apply_allocation("be", Allocation(cores=3, ways=3))
        server.apply_allocation("be", Allocation.empty())
        assert server.allocation_of("be").is_empty


class TestPower:
    def test_idle_only_when_parked(self, server, spec):
        assert server.power_w() == spec.idle_power_w

    def test_power_is_additive(self, server, spec):
        server.apply_allocation("lc", Allocation(cores=4, ways=6))   # 8+6 = 14
        server.apply_allocation("be", Allocation(cores=2, ways=4))   # 6+4 = 10
        assert server.power_w() == pytest.approx(spec.idle_power_w + 24.0)

    def test_duty_cycle_scales_tenant_power(self, server):
        server.apply_allocation("be", Allocation(cores=2, ways=4, duty_cycle=0.5))
        assert server.tenant_power_w("be") == pytest.approx(5.0)

    def test_headroom_and_over_cap(self, spec):
        s = Server(spec, provisioned_power_w=60.0)
        s.attach("lc", FlatPowerModel(per_core=10.0), role=PRIMARY)
        assert s.power_headroom_w() == pytest.approx(10.0)
        assert not s.is_over_cap()
        s.apply_allocation("lc", Allocation(cores=2, ways=2))
        assert s.is_over_cap()
        assert s.power_headroom_w() < 0

    def test_over_cap_margin(self, spec):
        s = Server(spec, provisioned_power_w=50.0)
        s.attach("lc", FlatPowerModel(), role=PRIMARY)
        assert not s.is_over_cap(margin_w=1.0)


class TestWithRealApps:
    def test_real_lc_power_matches_profile(self, spec, xapian):
        s = Server(spec, provisioned_power_w=154.0)
        s.attach(xapian.name, xapian, role=PRIMARY)
        alloc = Allocation(cores=6, ways=10)
        s.apply_allocation(xapian.name, alloc)
        expected = spec.idle_power_w + xapian.active_power_w(alloc)
        assert s.power_w() == pytest.approx(expected)

    def test_peak_power_matches_table2(self, spec, lc_apps):
        expected = {"img-dnn": 133.0, "sphinx": 182.0, "xapian": 154.0, "tpcc": 133.0}
        for name, app in lc_apps.items():
            s = Server(spec, provisioned_power_w=expected[name])
            s.attach(name, app, role=PRIMARY)
            s.apply_allocation(name, spec.full_allocation())
            assert s.power_w() == pytest.approx(expected[name], abs=0.5)
