"""Property tests of the utility closed forms in arbitrary dimension.

The Section III closed forms are stated for k resources; the 2-resource
tests pin the shipped instantiation, these pin the general math: for
random k-dimensional models, the primal demand spends the budget
exactly and dominates random feasible points, the dual lands on the
target at the analytic cost, and the two are mutually consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.utility import (
    CobbDouglasParams,
    IndirectUtilityModel,
    LinearPowerParams,
)


@st.composite
def k_models(draw):
    k = draw(st.integers(min_value=2, max_value=5))
    alphas = tuple(
        draw(st.floats(min_value=0.1, max_value=1.0)) for _ in range(k)
    )
    p = tuple(draw(st.floats(min_value=0.3, max_value=8.0)) for _ in range(k))
    alpha0 = draw(st.floats(min_value=0.5, max_value=5.0))
    p_static = draw(st.floats(min_value=0.0, max_value=10.0))
    return IndirectUtilityModel(
        perf=CobbDouglasParams(alpha0=alpha0, alphas=alphas),
        power=LinearPowerParams(p_static=p_static, p=p),
        names=tuple(f"r{i}" for i in range(k)),
    )


class TestKDimensionalClosedForms:
    @settings(max_examples=60, deadline=None)
    @given(k_models(), st.floats(min_value=15.0, max_value=300.0))
    def test_demand_spends_budget_exactly(self, model, budget):
        demand = model.demand(budget)
        assert model.power_w(demand) == pytest.approx(budget, rel=1e-9)
        assert all(r > 0 for r in demand)

    @settings(max_examples=60, deadline=None)
    @given(k_models(), st.floats(min_value=15.0, max_value=300.0),
           st.integers(min_value=0, max_value=10_000))
    def test_demand_dominates_random_feasible_points(self, model, budget, seed):
        demand = model.demand(budget)
        best = model.performance(demand)
        rng = np.random.default_rng(seed)
        k = len(model.names)
        headroom = budget - model.power.p_static
        for _ in range(15):
            weights = rng.dirichlet(np.ones(k))
            point = tuple(
                headroom * w / pj for w, pj in zip(weights, model.power.p)
            )
            assert model.power_w(point) <= budget + 1e-6
            assert model.performance(point) <= best * (1 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(k_models(), st.floats(min_value=0.3, max_value=40.0))
    def test_dual_reaches_target_at_analytic_cost(self, model, target):
        alloc = model.least_power_allocation(target)
        assert model.performance(alloc) == pytest.approx(target, rel=1e-9)
        # Analytic cost: p_static + t * sum(alpha) where t = r_j p_j / a_j.
        t = alloc[0] * model.power.p[0] / model.perf.alphas[0]
        assert model.min_power_for_performance(target) == pytest.approx(
            model.power.p_static + t * model.perf.alpha_sum, rel=1e-9
        )

    @settings(max_examples=60, deadline=None)
    @given(k_models(), st.floats(min_value=0.3, max_value=40.0))
    def test_primal_dual_roundtrip(self, model, target):
        power = model.min_power_for_performance(target)
        assert model.max_performance_under_budget(power) == pytest.approx(
            target, rel=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(k_models())
    def test_preference_vector_normalized_and_scale_free(self, model):
        pref = model.preference_vector()
        assert sum(pref.values()) == pytest.approx(1.0)
        # Scaling the power side uniformly must not change preferences.
        scaled = IndirectUtilityModel(
            perf=model.perf,
            power=LinearPowerParams(
                p_static=model.power.p_static * 3.0,
                p=tuple(3.0 * pj for pj in model.power.p),
            ),
            names=model.names,
        )
        for name in model.names:
            assert scaled.preference_vector()[name] == pytest.approx(pref[name])

    @settings(max_examples=40, deadline=None)
    @given(k_models(), st.floats(min_value=20.0, max_value=200.0))
    def test_expansion_path_is_a_ray_in_k_dims(self, model, budget):
        lo = model.least_power_allocation(0.5)
        hi = model.least_power_allocation(5.0)
        ratios = [b / a for a, b in zip(lo, hi)]
        assert max(ratios) == pytest.approx(min(ratios), rel=1e-9)
