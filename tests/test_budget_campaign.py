"""Budget-aware chaos campaigns and the pinned brownout-ladder fixture.

Satellite coverage for the infra-fault mutation pool: campaigns with
``infra_faults`` on draw rack derates/trips, arbiter crashes and grant
loss/delay alongside the cell faults, route them through
:class:`~repro.guard.campaign.BudgetCaseRunner` (which splits the
genome into plan-time infra faults and in-cell faults), and fold the
arbiter's ``budget.*`` degradation counters into coverage.

The pinned fixture ``tests/fixtures/budget_brownout.json`` walks the
whole brownout ladder (throttle -> evict -> shed -> hysteresis
recovery) and documents a real discovered behavior: a shed stage that
engages mid-level leaves a loaded LC server briefly unable to fit
under its 60%-floor cap — a power-cap finding the guard must keep
reporting — while both budget invariants stay clean.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.budget import BudgetConfig
from repro.errors import ConfigError
from repro.evaluation.pipeline import cluster_plans, placement_for_policy
from repro.faults.schedule import (
    ArbiterCrash,
    FaultSchedule,
    GrantDelay,
    GrantLoss,
    RackBreakerTrip,
    RackPowerDerate,
)
from repro.guard.campaign import (
    BUDGET_COUNTERS,
    BudgetCaseRunner,
    CampaignConfig,
    mutate_schedule,
    run_campaign,
)
from repro.guard.fixtures import load_fixture
from repro.guard.invariants import GuardConfig
from repro.sim.colocation import SimConfig

FIXTURE = Path(__file__).parent / "fixtures" / "budget_brownout.json"

INFRA_KINDS = (RackPowerDerate, RackBreakerTrip, ArbiterCrash, GrantLoss,
               GrantDelay)


@pytest.fixture(scope="module")
def fleet(catalog):
    placement = placement_for_policy(catalog, "pocolo")
    return cluster_plans(catalog, placement, "pocolo")


@pytest.fixture(scope="module")
def runner(catalog, fleet):
    return BudgetCaseRunner(
        plans=tuple(fleet),
        spec=catalog.spec,
        levels=(0.4, 0.8),
        duration_s=6.0,
        config=SimConfig(warmup_s=1.0, seed=0),
        guard=GuardConfig(mode="record"),
        budget=BudgetConfig(arbiter_period_s=1.0, lease_s=2.0, rack_size=2,
                            rack_slack=0.2),
    )


class TestInfraMutationPool:
    def test_infra_faults_enter_the_pool(self):
        rng = np.random.default_rng(0)
        config = CampaignConfig(infra_faults=True, max_faults=6)
        seen = set()
        schedule = FaultSchedule([])
        for _ in range(300):
            schedule = mutate_schedule(schedule, rng, config)
            seen.update(type(f) for f in schedule)
        assert seen.intersection(INFRA_KINDS), (
            "300 mutations never drew a power-infrastructure fault"
        )

    def test_infra_faults_off_by_default(self):
        rng = np.random.default_rng(0)
        config = CampaignConfig(max_faults=6)
        schedule = FaultSchedule([])
        for _ in range(300):
            schedule = mutate_schedule(schedule, rng, config)
            assert not any(isinstance(f, INFRA_KINDS) for f in schedule)

    def test_runner_validation(self, catalog, fleet):
        with pytest.raises(ConfigError):
            BudgetCaseRunner(plans=(), spec=catalog.spec)
        with pytest.raises(ConfigError):
            BudgetCaseRunner(
                plans=tuple(fleet), spec=catalog.spec,
                guard=GuardConfig(mode="enforce"),
            )
        with pytest.raises(ConfigError):
            BudgetCaseRunner(
                plans=tuple(fleet), spec=catalog.spec, levels=(),
            )
        with pytest.raises(ConfigError):
            BudgetCaseRunner(
                plans=tuple(fleet), spec=catalog.spec, duration_s=0.0,
            )

    def test_runner_merges_budget_counters(self, runner):
        outcome = runner.run(FaultSchedule([
            RackPowerDerate(start_s=1.0, duration_s=4.0, factor=0.5,
                            rack="rack0"),
        ]))
        counters = dict(outcome.counters)
        for name in BUDGET_COUNTERS:
            assert name in counters
        assert counters["budget.max_stage"] > 0
        assert any(name.startswith("cap.") for name in counters)

    def test_runner_is_deterministic(self, runner):
        schedule = FaultSchedule([
            GrantLoss(start_s=2.0, duration_s=3.0),
            ArbiterCrash(start_s=6.0, duration_s=2.0),
        ])
        first = runner.run(schedule)
        second = runner.run(schedule)
        assert first.counters == second.counters
        assert first.report == second.report

    def test_mini_campaign_with_infra_pool(self, catalog, fleet):
        runner = BudgetCaseRunner(
            plans=tuple(fleet[:2]),
            spec=catalog.spec,
            levels=(0.5,),
            duration_s=3.0,
            config=SimConfig(warmup_s=1.0, seed=0),
            guard=GuardConfig(mode="record"),
            budget=BudgetConfig(arbiter_period_s=1.0, lease_s=2.0),
        )
        config = CampaignConfig(
            seed=7, rounds=2, batch_size=2, initial_corpus=2,
            horizon_s=3.0, mean_duration_s=2.0, infra_faults=True,
            stop_on_violation=False,
        )
        result = run_campaign(runner, config)
        assert result.cases_run == 2 + 2 * 2
        assert result.coverage_points > 0


class TestBrownoutLadderFixture:
    """The pinned reproducer keeps reproducing, and the ladder moves."""

    def test_fixture_loads(self):
        schedule, meta = load_fixture(FIXTURE)
        assert len(schedule) == 3
        assert all(isinstance(f, RackPowerDerate) for f in schedule)
        assert meta["invariants"] == ["power-cap"]
        factors = [f.factor for f in schedule]
        assert factors == sorted(factors, reverse=True)

    def test_ladder_fully_exercised(self, runner):
        schedule, _ = load_fixture(FIXTURE)
        outcome = runner.run(schedule)
        counters = dict(outcome.counters)
        assert counters["budget.max_stage"] == 3
        assert counters["budget.throttle_ticks"] >= 1
        assert counters["budget.evict_ticks"] >= 1
        assert counters["budget.shed_ticks"] >= 1
        assert counters["budget.brownout_entries"] >= 1
        assert counters["budget.evicted_cells"] >= 1

    def test_power_cap_finding_still_reproduces(self, runner):
        schedule, meta = load_fixture(FIXTURE)
        outcome = runner.run(schedule)
        assert outcome.violating
        assert outcome.violated_invariants() == tuple(meta["invariants"])

    def test_budget_invariants_stay_clean(self, runner):
        schedule, _ = load_fixture(FIXTURE)
        outcome = runner.run(schedule)
        budget_violations = [
            v for v in outcome.report.violations
            if v.invariant in ("grant-conservation", "rack-overcommit")
        ]
        assert budget_violations == []
