"""Tests for repro.core.server_manager: POM and the Heracles baseline."""

import pytest

from repro.core.server_manager import (
    DEFAULT_SLACK_TARGET,
    HeraclesLikeManager,
    PowerOptimizedManager,
)
from repro.errors import ConfigError
from repro.hwmodel.server import PRIMARY, SECONDARY, Server
from repro.hwmodel.spec import Allocation


def build_server(spec, lc_app, be_app=None, provisioned=None):
    cap = provisioned if provisioned is not None else lc_app.peak_server_power_w()
    server = Server(spec, provisioned_power_w=cap)
    server.attach(lc_app.name, lc_app, role=PRIMARY)
    server.apply_allocation(lc_app.name, spec.full_allocation())
    if be_app is not None:
        server.attach(be_app.name, be_app, role=SECONDARY)
    return server


def drive_to_steady(manager, lc_app, load, steps=40):
    """Feed noiseless telemetry until the controller settles."""
    primary = manager.server.primary_tenant()
    for _ in range(steps):
        alloc = manager.server.allocation_of(primary)
        slack = lc_app.slack(load, alloc)
        manager.control_step(load, slack)
    return manager.server.allocation_of(primary)


class TestPowerOptimizedManager:
    def test_shrinks_from_full_at_low_load(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        alloc = drive_to_steady(manager, lc, 0.1 * lc.peak_load)
        assert alloc.cores <= 3
        assert alloc.ways <= 5

    def test_steady_state_meets_slo(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        for level in (0.1, 0.5, 0.9):
            server = build_server(spec, lc)
            manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
            alloc = drive_to_steady(manager, lc, level * lc.peak_load)
            assert lc.slack(level * lc.peak_load, alloc) >= 0.0

    def test_grows_on_load_step(self, catalog, spec):
        """The Section II-C reclamation: load 50% -> 80% takes resources back."""
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["rnn"]
        server = build_server(spec, lc, be)
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        low = drive_to_steady(manager, lc, 0.5 * lc.peak_load)
        be_before = server.allocation_of(be.name)
        high = drive_to_steady(manager, lc, 0.8 * lc.peak_load)
        be_after = server.allocation_of(be.name)
        assert high.cores + high.ways > low.cores + low.ways
        assert be_after.cores < be_before.cores or be_after.ways < be_before.ways

    def test_be_receives_spare(self, catalog, spec):
        lc = catalog.lc_apps["sphinx"]
        be = catalog.be_apps["graph"]
        server = build_server(spec, lc, be)
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["sphinx"].model)
        lc_alloc = drive_to_steady(manager, lc, 0.3 * lc.peak_load)
        be_alloc = server.allocation_of(be.name)
        assert be_alloc.cores == spec.cores - lc_alloc.cores
        assert be_alloc.ways == spec.llc_ways - lc_alloc.ways

    def test_be_throttle_state_preserved_across_reallocations(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["graph"]
        server = build_server(spec, lc, be)
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        drive_to_steady(manager, lc, 0.5 * lc.peak_load)
        # Simulate the cap loop having throttled the BE tenant.
        throttled = server.allocation_of(be.name).with_freq(1.5).with_duty_cycle(0.8)
        server.apply_allocation(be.name, throttled)
        drive_to_steady(manager, lc, 0.6 * lc.peak_load, steps=5)
        after = server.allocation_of(be.name)
        assert after.freq_ghz == pytest.approx(1.5)
        assert after.duty_cycle == pytest.approx(0.8)

    def test_uses_less_power_than_baseline(self, catalog, spec):
        """The POM premise: same load, same SLO, fewer watts."""
        lc = catalog.lc_apps["sphinx"]
        load = 0.4 * lc.peak_load

        server_pom = build_server(spec, lc)
        pom = PowerOptimizedManager(server_pom, model=catalog.lc_fits["sphinx"].model)
        alloc_pom = drive_to_steady(pom, lc, load)

        server_base = build_server(spec, lc)
        base = HeraclesLikeManager(server_base)
        alloc_base = drive_to_steady(base, lc, load, steps=120)

        assert lc.slack(load, alloc_pom) >= 0
        assert lc.slack(load, alloc_base) >= 0
        assert lc.active_power_w(alloc_pom) < lc.active_power_w(alloc_base)

    def test_freq_trim_engages_at_floor(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        manager = PowerOptimizedManager(
            server, model=catalog.lc_fits["xapian"].model, freq_trim=True
        )
        alloc = drive_to_steady(manager, lc, 0.02 * lc.peak_load, steps=60)
        assert alloc.freq_ghz < spec.max_freq_ghz

    def test_stats_track_activity(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        drive_to_steady(manager, lc, 0.5 * lc.peak_load, steps=10)
        assert manager.stats.control_steps == 10
        assert manager.stats.reconfigurations >= 1

    def test_validation(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        model = catalog.lc_fits["xapian"].model
        with pytest.raises(ConfigError):
            PowerOptimizedManager(server, model=model, slack_target=1.5)
        with pytest.raises(ConfigError):
            PowerOptimizedManager(server, model=model, slack_target=0.2,
                                  slack_upper=0.1)
        with pytest.raises(ConfigError):
            PowerOptimizedManager(server, model=model, headroom=0.5)

    def test_requires_primary(self, spec, catalog):
        server = Server(spec, provisioned_power_w=100.0)
        with pytest.raises(ConfigError):
            PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)

    def test_negative_load_rejected(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        with pytest.raises(ConfigError):
            manager.control_step(-1.0, 0.5)


class TestHeraclesLikeManager:
    def test_walks_balanced_path(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        manager = HeraclesLikeManager(server)
        alloc = drive_to_steady(manager, lc, 0.3 * lc.peak_load, steps=120)
        # Balanced path: ways ~ cores * (20/12)
        assert alloc.ways == pytest.approx(alloc.cores * spec.llc_ways / spec.cores,
                                           abs=1.0)

    def test_slo_held_through_shrink(self, catalog, spec):
        lc = catalog.lc_apps["tpcc"]
        server = build_server(spec, lc)
        manager = HeraclesLikeManager(server)
        load = 0.5 * lc.peak_load
        violations = 0
        for _ in range(120):
            alloc = server.allocation_of(lc.name)
            slack = lc.slack(load, alloc)
            if slack < 0:
                violations += 1
            manager.control_step(load, slack)
        assert violations <= 3  # transient dips only, then floor kicks in

    def test_violation_recovery_sets_floor(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        manager = HeraclesLikeManager(server, floor_ttl=10_000)
        drive_to_steady(manager, lc, 0.5 * lc.peak_load, steps=120)
        floor = manager._floor_cores
        steady = server.allocation_of(lc.name)
        assert steady.cores >= floor

    def test_grow_cooldown_blocks_immediate_shrink(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        server.apply_allocation(lc.name, Allocation(cores=2, ways=3))
        manager = HeraclesLikeManager(server, grow_cooldown=5, shrink_patience=1)
        manager.control_step(0.5 * lc.peak_load, -0.5)   # starved -> grow
        grown = server.allocation_of(lc.name)
        manager.control_step(0.0, 0.99)                   # lavish, but cooling down
        assert server.allocation_of(lc.name) == grown

    def test_stats_and_validation(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        with pytest.raises(ConfigError):
            HeraclesLikeManager(server, shrink_patience=0)
        manager = HeraclesLikeManager(server)
        drive_to_steady(manager, lc, 0.2 * lc.peak_load, steps=60)
        assert manager.stats.shrink_actions > 0


class TestRandomWalkBaseline:
    """The paper-literal baseline: any feasible indifference point."""

    def test_random_path_keeps_slo(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        manager = HeraclesLikeManager(server, path="random", seed=3)
        load = 0.5 * lc.peak_load
        violations = 0
        for _ in range(120):
            alloc = server.allocation_of(lc.name)
            slack = lc.slack(load, alloc)
            if slack < 0:
                violations += 1
            manager.control_step(load, slack)
        assert violations <= 5
        final = server.allocation_of(lc.name)
        assert lc.slack(load, final) >= 0

    def test_random_path_departs_from_balanced_ratio(self, catalog, spec):
        """With a seeded random walk the steady allocation generally sits
        off the balanced core:way ray for at least one seed."""
        lc = catalog.lc_apps["sphinx"]
        load = 0.4 * lc.peak_load
        off_ray = 0
        for seed in range(5):
            server = build_server(spec, lc)
            manager = HeraclesLikeManager(server, path="random", seed=seed)
            alloc = drive_to_steady(manager, lc, load, steps=120)
            balanced_ways = round(alloc.cores * spec.llc_ways / spec.cores)
            if abs(alloc.ways - balanced_ways) > 1:
                off_ray += 1
        assert off_ray >= 1

    def test_seed_reproducibility(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        results = []
        for _ in range(2):
            server = build_server(spec, lc)
            manager = HeraclesLikeManager(server, path="random", seed=11)
            results.append(drive_to_steady(manager, lc, 0.3 * lc.peak_load,
                                           steps=80))
        assert results[0] == results[1]

    def test_unknown_path_rejected(self, catalog, spec):
        lc = catalog.lc_apps["xapian"]
        server = build_server(spec, lc)
        with pytest.raises(ConfigError):
            HeraclesLikeManager(server, path="zigzag")
