"""Meter watchdog and safe mode (graceful degradation of the cap loop).

A lying power sensor is the one fault that silently breaches the
provisioned capacity — these tests pin the watchdog's detection latency
(the ISSUE acceptance criterion: safe mode within 5 samples of a stuck-at
fault), the safe-mode floor semantics, recovery, and the end-to-end
containment of the true over-cap fraction.
"""

import numpy as np
import pytest

from repro.core.server_manager import PowerOptimizedManager
from repro.errors import ConfigError
from repro.faults import FaultSchedule, FaultyPowerMeter, MeterStuckAt
from repro.hwmodel.capping import PowerCapController
from repro.hwmodel.meter import PowerMeter
from repro.sim import ColocationSim, SimConfig, build_colocated_server
from repro.workloads import ConstantTrace


def capped_server(catalog, schedule=None, noise_sigma_w=0.5, **capper_kwargs):
    """A loaded server + cap loop, optionally behind a faulty meter."""
    from repro.evaluation.motivation import true_min_power_allocation

    lc = catalog.lc_apps["xapian"]
    be = catalog.be_apps["graph"]
    server = build_colocated_server(
        catalog.spec, lc, provisioned_power_w=132.0, be_app=be
    )
    server.apply_allocation(lc.name, true_min_power_allocation(lc, 0.1))
    server.apply_allocation(be.name, server.spare_allocation())
    rng = np.random.default_rng(0)
    if schedule is not None:
        meter = FaultyPowerMeter(
            source=server.power_w, schedule=schedule, rng=rng,
            noise_sigma_w=noise_sigma_w,
        )
    else:
        meter = PowerMeter(
            source=server.power_w, rng=rng, noise_sigma_w=noise_sigma_w
        )
    capper = PowerCapController(server, meter, **capper_kwargs)
    return server, be, capper


class TestWatchdogDetection:
    def test_stuck_meter_trips_within_five_samples(self, catalog):
        schedule = FaultSchedule([MeterStuckAt(start_s=2.0, duration_s=2.0)])
        server, be, capper = capped_server(catalog, schedule)
        onset_sample = 20  # t = 2.0 at 100 ms per sample
        first_safe = None
        for k in range(40):
            capper.step(k * 0.1)
            if capper.safe_mode and first_safe is None:
                first_safe = k
        assert first_safe is not None
        assert onset_sample <= first_safe <= onset_sample + 5
        assert capper.stats.watchdog_trips == 1
        assert capper.stats.safe_mode_entries == 1
        assert capper.stats.safe_mode_steps > 0

    def test_safe_mode_floors_the_be_tenant(self, catalog):
        schedule = FaultSchedule([MeterStuckAt(start_s=1.0, duration_s=None)])
        server, be, capper = capped_server(catalog, schedule)
        for k in range(30):
            capper.step(k * 0.1)
        assert capper.safe_mode
        alloc = server.allocation_of(be.name)
        assert alloc.freq_ghz == pytest.approx(server.spec.ladder.min_ghz)
        assert alloc.duty_cycle == pytest.approx(capper.min_duty_cycle)

    def test_recovery_after_the_fault_clears(self, catalog):
        schedule = FaultSchedule([MeterStuckAt(start_s=2.0, duration_s=2.0)])
        server, be, capper = capped_server(catalog, schedule)
        recovery_sample = 40  # fault window closes at t = 4.0
        cleared_at = None
        for k in range(70):
            capper.step(k * 0.1)
            if (
                k > recovery_sample
                and not capper.safe_mode
                and cleared_at is None
            ):
                cleared_at = k
        assert cleared_at is not None
        assert cleared_at - recovery_sample <= capper.recovery_samples + 1
        assert not capper.safe_mode

    def test_implausible_reading_trips_immediately(self, catalog):
        schedule = FaultSchedule([
            # 10x the cap: fails the plausibility bound on the very first
            # faulty sample, no repeat streak needed.
            MeterStuckAt(start_s=1.0, duration_s=None, value_w=1320.0)
        ])
        server, be, capper = capped_server(catalog, schedule)
        for k in range(10):
            capper.step(k * 0.1)
        assert not capper.safe_mode
        capper.step(10 * 0.1)  # t = 1.0: the first implausible reading
        assert capper.safe_mode
        assert capper.stats.watchdog_trips == 1

    def test_exact_meter_never_trips_on_repeats(self, catalog):
        # A noiseless meter legitimately repeats at steady state; the
        # stale check must stay disarmed for it.
        server, be, capper = capped_server(catalog, noise_sigma_w=0.0)
        for k in range(60):
            capper.step(k * 0.1)
        assert not capper.safe_mode
        assert capper.stats.watchdog_trips == 0

    def test_watchdog_can_be_disabled(self, catalog):
        schedule = FaultSchedule([MeterStuckAt(start_s=1.0, duration_s=None)])
        server, be, capper = capped_server(catalog, schedule, watchdog=False)
        for k in range(40):
            capper.step(k * 0.1)
        assert not capper.safe_mode
        assert capper.stats.watchdog_trips == 0

    def test_parameter_validation(self, catalog):
        with pytest.raises(ConfigError):
            capped_server(catalog, stale_after=0)
        with pytest.raises(ConfigError):
            capped_server(catalog, recovery_samples=0)
        with pytest.raises(ConfigError):
            capped_server(catalog, max_plausible_w=0.0)


def run_colocation(catalog, faults=None, duration_s=40.0):
    lc = catalog.lc_apps["xapian"]
    be = catalog.be_apps["rnn"]
    server = build_colocated_server(
        catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(), be_app=be
    )
    manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
    sim = ColocationSim(
        server=server, lc_app=lc, trace=ConstantTrace(0.5), manager=manager,
        be_app=be, config=SimConfig(seed=0), faults=faults,
    )
    return sim.run(duration_s=duration_s), server


class TestSafeModeEndToEnd:
    """The ISSUE acceptance criterion, measured on *true* power."""

    def test_stuck_meter_contained_to_twice_faultfree_overcap(self, catalog):
        clean, clean_server = run_colocation(catalog)
        schedule = FaultSchedule([MeterStuckAt(start_s=15.0, duration_s=15.0)])
        stuck, stuck_server = run_colocation(catalog, faults=schedule)

        cap = stuck_server.provisioned_power_w
        clean_frac = clean.telemetry.series("power_w").fraction_above(cap)
        stuck_frac = stuck.telemetry.series("power_w").fraction_above(cap)
        # Graceful degradation: the lying sensor must not let true power
        # float above the cap — no worse than twice the fault-free rate
        # (with a tiny absolute allowance for the zero-violation case).
        assert stuck_frac <= max(2.0 * clean_frac, 0.02)

        # The watchdog actually engaged, and safe mode covers the window.
        assert stuck.cap_stats.watchdog_trips >= 1
        safe = stuck.telemetry.series("safe_mode")
        in_window = [v for t, v in zip(safe.times, safe.values) if 16.0 <= t < 30.0]
        assert in_window and max(in_window) == 1.0
        # Fault-free runs never enter safe mode.
        assert clean.cap_stats.safe_mode_steps == 0
        assert max(clean.telemetry.series("safe_mode").values) == 0.0

    def test_be_throughput_recovers_after_the_fault(self, catalog):
        schedule = FaultSchedule([MeterStuckAt(start_s=10.0, duration_s=10.0)])
        result, _ = run_colocation(catalog, faults=schedule)
        tput = result.telemetry.series("be_throughput_norm")
        during = [v for t, v in zip(tput.times, tput.values) if 12.0 <= t < 20.0]
        after = [v for t, v in zip(tput.times, tput.values) if t >= 35.0]
        # Floored during the fault, climbing again after recovery.
        assert max(during) < max(after)
        assert max(after) > 0.1
