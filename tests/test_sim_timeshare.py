"""Tests for repro.sim.timeshare: multiple BE apps sharing one server."""

import pytest

from repro.core.server_manager import PowerOptimizedManager
from repro.errors import ConfigError, SimulationError
from repro.sim.colocation import SimConfig, build_colocated_server
from repro.sim.timeshare import (
    BestEffortJob,
    FcfsScheduler,
    RoundRobinScheduler,
    SjfScheduler,
    TimeSharedColocationSim,
)
from repro.workloads.traces import ConstantTrace


def make_jobs(catalog, specs):
    """specs: list of (name, app_name, work, arrival)."""
    return [
        BestEffortJob(name=name, app=catalog.be_apps[app], work_units=work,
                      arrival_s=arrival)
        for name, app, work, arrival in specs
    ]


def make_sim(catalog, jobs, scheduler, lc_name="xapian", level=0.3, seed=0):
    lc = catalog.lc_apps[lc_name]
    server = build_colocated_server(
        catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w()
    )
    manager = PowerOptimizedManager(server, model=catalog.lc_fits[lc_name].model)
    return TimeSharedColocationSim(
        server=server, lc_app=lc, trace=ConstantTrace(level),
        manager=manager, jobs=jobs, scheduler=scheduler,
        config=SimConfig(seed=seed, warmup_s=0.0),
    )


class TestJobModel:
    def test_progress_accounting(self, catalog):
        job = BestEffortJob("j", catalog.be_apps["rnn"], work_units=5.0)
        assert job.remaining == 5.0
        assert not job.done
        job.remaining = 0.0
        assert job.done

    def test_response_time(self, catalog):
        job = BestEffortJob("j", catalog.be_apps["rnn"], work_units=5.0,
                            arrival_s=10.0)
        assert job.response_time_s is None
        job.completed_s = 35.0
        assert job.response_time_s == 25.0

    def test_validation(self, catalog):
        with pytest.raises(ConfigError):
            BestEffortJob("j", catalog.be_apps["rnn"], work_units=0.0)
        with pytest.raises(ConfigError):
            BestEffortJob("j", catalog.be_apps["rnn"], work_units=1.0,
                          arrival_s=-5.0)


class TestSchedulers:
    def test_fcfs_picks_earliest_arrival(self, catalog):
        jobs = make_jobs(catalog, [("a", "rnn", 5, 3.0), ("b", "lstm", 1, 1.0)])
        assert FcfsScheduler().pick(jobs, 10.0).name == "b"

    def test_sjf_picks_shortest_remaining(self, catalog):
        jobs = make_jobs(catalog, [("a", "rnn", 5, 0.0), ("b", "lstm", 1, 2.0)])
        assert SjfScheduler().pick(jobs, 10.0).name == "b"

    def test_round_robin_cycles(self, catalog):
        jobs = make_jobs(catalog, [("a", "rnn", 5, 0.0), ("b", "lstm", 5, 0.0)])
        rr = RoundRobinScheduler(quantum_s=2.0)
        picks = [rr.pick(jobs, t).name for t in (0.0, 2.0, 4.0)]
        assert picks == ["a", "b", "a"]

    def test_round_robin_validation(self):
        with pytest.raises(ConfigError):
            RoundRobinScheduler(quantum_s=0.0)


class TestTimeSharedRun:
    def test_all_jobs_complete(self, catalog):
        jobs = make_jobs(catalog, [("a", "rnn", 8, 0.0), ("b", "lstm", 8, 0.0)])
        result = make_sim(catalog, jobs, FcfsScheduler()).run(max_duration_s=200.0)
        assert result.all_done
        assert result.makespan_s < 200.0
        for job in result.jobs:
            assert job.completed_s is not None
            assert job.started_s is not None

    def test_fcfs_runs_in_arrival_order(self, catalog):
        jobs = make_jobs(catalog, [("late", "rnn", 4, 5.0), ("early", "lstm", 4, 0.0)])
        result = make_sim(catalog, jobs, FcfsScheduler()).run(max_duration_s=200.0)
        by_name = {j.name: j for j in result.jobs}
        assert by_name["early"].completed_s < by_name["late"].completed_s

    def test_sjf_beats_fcfs_on_mean_response_time(self, catalog):
        """The classic scheduling result the paper's SJF mention implies."""
        specs = [("big", "rnn", 20, 0.0), ("s1", "lstm", 2, 0.0),
                 ("s2", "pbzip", 2, 0.0)]
        fcfs = make_sim(catalog, make_jobs(catalog, specs),
                        FcfsScheduler()).run(max_duration_s=400.0)
        # FCFS ties on arrival break by name: "big" < "s1" -> big runs first.
        sjf = make_sim(catalog, make_jobs(catalog, specs),
                       SjfScheduler()).run(max_duration_s=400.0)
        assert fcfs.all_done and sjf.all_done
        assert sjf.mean_response_time_s < fcfs.mean_response_time_s

    def test_work_conservation(self, catalog):
        jobs = make_jobs(catalog, [("a", "rnn", 6, 0.0), ("b", "graph", 6, 0.0)])
        result = make_sim(catalog, jobs, SjfScheduler()).run(max_duration_s=300.0)
        assert result.total_work_done == pytest.approx(12.0, abs=1e-6)

    def test_slo_held_through_swaps(self, catalog):
        jobs = make_jobs(catalog, [("a", "graph", 5, 0.0), ("b", "lstm", 5, 0.0),
                                   ("c", "pbzip", 5, 0.0)])
        result = make_sim(catalog, jobs, RoundRobinScheduler(quantum_s=5.0),
                          level=0.5).run(max_duration_s=300.0)
        assert result.slo_violation_fraction < 0.05

    def test_horizon_expiry_leaves_unfinished_jobs(self, catalog):
        jobs = make_jobs(catalog, [("a", "rnn", 1000, 0.0)])
        result = make_sim(catalog, jobs, FcfsScheduler()).run(max_duration_s=10.0)
        assert not result.all_done
        assert result.jobs[0].remaining > 0
        assert result.mean_response_time_s == float("inf")

    def test_job_arriving_later_waits(self, catalog):
        jobs = make_jobs(catalog, [("later", "rnn", 3, 50.0)])
        result = make_sim(catalog, jobs, FcfsScheduler()).run(max_duration_s=200.0)
        assert result.jobs[0].started_s >= 50.0


class TestValidation:
    def test_needs_jobs(self, catalog):
        with pytest.raises(ConfigError):
            make_sim(catalog, [], FcfsScheduler())

    def test_unique_job_names(self, catalog):
        jobs = make_jobs(catalog, [("a", "rnn", 1, 0.0), ("a", "lstm", 1, 0.0)])
        with pytest.raises(ConfigError):
            make_sim(catalog, jobs, FcfsScheduler())

    def test_rejects_preattached_secondary(self, catalog):
        lc = catalog.lc_apps["xapian"]
        server = build_colocated_server(
            catalog.spec, lc, lc.peak_server_power_w(),
            be_app=catalog.be_apps["rnn"],
        )
        manager = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        jobs = make_jobs(catalog, [("a", "lstm", 1, 0.0)])
        with pytest.raises(SimulationError):
            TimeSharedColocationSim(
                server=server, lc_app=lc, trace=ConstantTrace(0.3),
                manager=manager, jobs=jobs, scheduler=FcfsScheduler(),
            )

    def test_invalid_duration(self, catalog):
        jobs = make_jobs(catalog, [("a", "rnn", 1, 0.0)])
        sim = make_sim(catalog, jobs, FcfsScheduler())
        with pytest.raises(ConfigError):
            sim.run(max_duration_s=0.0)
