"""Tests for repro.evaluation.colocation_eval and ablations (short runs)."""


import pytest

from repro.errors import ConfigError
from repro.evaluation.ablations import (
    ablate_sample_budget,
    ablate_slack_target,
    ablate_solver_choice,
)
from repro.evaluation.colocation_eval import (
    evaluate_policy,
    measure_placement,
)
from repro.evaluation.pipeline import placement_for_policy


class TestEvaluatePolicy:
    def test_aggregates_per_server(self, catalog):
        ev = evaluate_policy(catalog, "pocolo", levels=[0.3, 0.7], duration_s=8.0)
        assert set(ev.be_throughput_by_server) == set(catalog.lc_apps)
        assert 0.0 < ev.cluster_be_throughput < 1.0
        assert 0.0 < ev.cluster_power_utilization <= 1.05
        assert len(ev.runs) == 1  # pocolo placement is deterministic

    def test_random_policy_averages_seeds(self, catalog):
        ev = evaluate_policy(catalog, "random", placement_seeds=range(3),
                             levels=[0.5], duration_s=6.0)
        assert len(ev.runs) == 3


class TestMeasurePlacement:
    def test_curve_shape(self, catalog):
        mapping = placement_for_policy(catalog, "pocolo").mapping
        curve = measure_placement(catalog, mapping, levels=[0.2, 0.8],
                                  duration_s=6.0)
        assert curve.levels == (0.2, 0.8)
        assert len(curve.total_load) == 2
        assert all(0.0 < v < 2.0 for v in curve.total_load)
        assert curve.mean_total == pytest.approx(
            sum(curve.total_load) / 2
        )

    def test_total_includes_lc_and_be(self, catalog):
        mapping = placement_for_policy(catalog, "pocolo").mapping
        curve = measure_placement(catalog, mapping, levels=[0.5], duration_s=6.0)
        # Total server load at level 0.5 must exceed the LC share alone.
        assert curve.total_load[0] > 0.5


class TestSolverAblation:
    def test_exact_methods_agree(self, catalog):
        rows, random_mean = ablate_solver_choice(catalog)
        by_method = {r.method: r for r in rows}
        assert by_method["lp"].predicted_total == pytest.approx(
            by_method["hungarian"].predicted_total
        )
        assert by_method["lp"].predicted_total == pytest.approx(
            by_method["brute"].predicted_total
        )

    def test_greedy_at_most_optimal(self, catalog):
        rows, _ = ablate_solver_choice(catalog)
        by_method = {r.method: r for r in rows}
        assert by_method["greedy"].predicted_total <= (
            by_method["lp"].predicted_total + 1e-9
        )

    def test_optimal_beats_random_mean(self, catalog):
        rows, random_mean = ablate_solver_choice(catalog)
        by_method = {r.method: r for r in rows}
        assert by_method["lp"].predicted_total > random_mean


class TestSlackAblation:
    def test_rows_cover_targets(self, catalog):
        rows = ablate_slack_target(catalog, targets=(0.1, 0.5),
                                   levels=[0.3], duration_s=5.0)
        assert [r.slack_target for r in rows] == [0.1, 0.5]

    def test_extreme_target_starves_be(self, catalog):
        rows = ablate_slack_target(catalog, targets=(0.1, 0.5),
                                   levels=[0.3, 0.6], duration_s=10.0)
        plateau, cliff = rows
        assert cliff.be_throughput < plateau.be_throughput


class TestSampleBudgetAblation:
    def test_full_grid_recovers_placement(self):
        rows = ablate_sample_budget(budgets=(6,))
        assert rows[0].placement_matches_full
        assert rows[0].mean_pref_error < 0.08

    def test_rows_report_grid_sizes(self):
        rows = ablate_sample_budget(budgets=(3, 4))
        assert rows[0].n_points == 9
        assert rows[1].n_points == 16

    def test_too_small_budget_rejected(self):
        with pytest.raises(ConfigError):
            ablate_sample_budget(budgets=(1,))


class TestCalibrationAblation:
    def test_small_perturbation_keeps_conclusion(self):
        from repro.evaluation.ablations import ablate_calibration_sensitivity
        rows = ablate_calibration_sensitivity(trials=4, perturbation=0.05)
        assert all(r.graph_on_sphinx for r in rows)
        assert all(r.predicted_regret < 1e-9 for r in rows)

    def test_rows_carry_mappings(self):
        from repro.evaluation.ablations import ablate_calibration_sensitivity
        rows = ablate_calibration_sensitivity(trials=2, perturbation=0.1)
        for r in rows:
            assert len(r.mapping) == 4
            assert {be for be, _ in r.mapping} == {"lstm", "rnn", "graph", "pbzip"}

    def test_validation(self):
        from repro.evaluation.ablations import ablate_calibration_sensitivity
        import pytest
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ablate_calibration_sensitivity(trials=0)
        with pytest.raises(ConfigError):
            ablate_calibration_sensitivity(trials=1, perturbation=1.5)
