"""Tests for repro.evaluation.characterization: Figs 5, 6, 8, 9-11."""


import pytest

from repro.errors import ConfigError
from repro.evaluation.characterization import (
    fig5_indifference,
    fig6_edgeworth,
    fig8_goodness_of_fit,
    fig9_10_11_preferences,
)


class TestFig5:
    def test_curves_for_each_level(self, catalog):
        fig = fig5_indifference(catalog)
        assert fig.app_name == "sphinx"
        assert fig.levels == (0.2, 0.4, 0.6, 0.8)
        assert set(fig.curves) == set(fig.levels)

    def test_curve_points_share_performance(self, catalog):
        fig = fig5_indifference(catalog)
        model = catalog.lc_fits["sphinx"].model
        app = catalog.lc_apps["sphinx"]
        for level, curve in fig.curves.items():
            target = level * app.peak_load
            for cores, ways in curve:
                assert model.performance((cores, ways)) == pytest.approx(target)

    def test_expansion_point_is_cheapest_on_curve(self, catalog):
        fig = fig5_indifference(catalog)
        model = catalog.lc_fits["sphinx"].model
        for level, (exp_c, exp_w) in zip(fig.levels, fig.expansion):
            exp_power = model.power_w((exp_c, exp_w))
            for cores, ways in fig.curves[level]:
                assert model.power_w((cores, ways)) >= exp_power - 1e-6

    def test_unknown_app_rejected(self, catalog):
        with pytest.raises(ConfigError):
            fig5_indifference(catalog, app_name="redis")


class TestFig6:
    def test_points_are_complements(self, catalog):
        points = fig6_edgeworth(catalog)
        spec = catalog.spec
        for p in points:
            assert p.primary[0] + p.spare[0] <= spec.cores + 1e-9 or p.spare[0] == 0.0
            if p.spare[0] > 0:
                assert p.primary[0] + p.spare[0] == pytest.approx(spec.cores)

    def test_spare_shrinks_with_load(self, catalog):
        points = fig6_edgeworth(catalog)
        spare_totals = [p.spare[0] + p.spare[1] for p in points]
        assert spare_totals == sorted(spare_totals, reverse=True)

    def test_unknown_app_rejected(self, catalog):
        with pytest.raises(ConfigError):
            fig6_edgeworth(catalog, app_name="redis")


class TestFig8:
    def test_all_eight_apps_reported(self, catalog):
        rows = fig8_goodness_of_fit(catalog)
        assert len(rows) == 8
        assert sum(1 for r in rows if r.kind == "lc") == 4
        assert sum(1 for r in rows if r.kind == "be") == 4

    def test_r2_in_paper_band(self, catalog):
        """Fig 8: perf R² 0.8-0.95, power R² 0.8-0.98 (we allow a margin)."""
        for row in fig8_goodness_of_fit(catalog):
            assert 0.70 <= row.r2_perf <= 1.0
            assert 0.80 <= row.r2_power <= 1.0

    def test_sample_counts_positive(self, catalog):
        assert all(r.n_samples >= 10 for r in fig8_goodness_of_fit(catalog))


class TestFig9To11:
    def test_shares_sum_to_one(self, catalog):
        for row in fig9_10_11_preferences(catalog):
            assert row.direct_cores + row.direct_ways == pytest.approx(1.0)
            assert row.power_cores + row.power_ways == pytest.approx(1.0)
            assert row.indirect_cores + row.indirect_ways == pytest.approx(1.0)

    def test_sphinx_pivot(self, catalog):
        """Fig 9 vs Fig 11: sphinx flips from cores to ways under power."""
        rows = {r.app_name: r for r in fig9_10_11_preferences(catalog)}
        sphinx = rows["sphinx"]
        assert sphinx.direct_cores > 0.5
        assert sphinx.indirect_cores < 0.3

    def test_quoted_preference_values(self, catalog):
        """Section V-C quotes: sphinx indirect ~0.2:0.8, graph ~0.8:0.2."""
        rows = {r.app_name: r for r in fig9_10_11_preferences(catalog)}
        assert rows["sphinx"].indirect_cores == pytest.approx(0.2, abs=0.06)
        assert rows["graph"].indirect_cores == pytest.approx(0.8, abs=0.06)
        assert rows["lstm"].indirect_cores == pytest.approx(0.13, abs=0.06)

    def test_indirect_consistency(self, catalog):
        """indirect share must equal (direct/power) renormalized."""
        for row in fig9_10_11_preferences(catalog):
            raw_c = row.direct_cores / row.power_cores
            raw_w = row.direct_ways / row.power_ways
            assert row.indirect_cores == pytest.approx(raw_c / (raw_c + raw_w))
