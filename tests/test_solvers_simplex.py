"""Tests for repro.solvers.simplex and the assignment LP wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.solvers.assignment import METHODS, assign_max, lp_assignment_max
from repro.solvers.hungarian import solve_assignment_max
from repro.solvers.simplex import solve_lp


class TestKnownLPs:
    def test_two_variable_textbook(self):
        # max 3x + 2y s.t. x + y <= 4, x <= 2 -> x=2, y=2, obj=10
        result = solve_lp([3, 2], a_ub=[[1, 1], [1, 0]], b_ub=[4, 2])
        assert result.objective == pytest.approx(10.0)
        assert result.x == pytest.approx([2.0, 2.0])

    def test_equality_constraint(self):
        # max x + 2y s.t. x + y == 3, y <= 2 -> x=1, y=2, obj=5
        result = solve_lp([1, 2], a_ub=[[0, 1]], b_ub=[2], a_eq=[[1, 1]], b_eq=[3])
        assert result.objective == pytest.approx(5.0)

    def test_negative_rhs_inequality(self):
        # max -x s.t. -x <= -2  (i.e. x >= 2) -> x=2, obj=-2
        result = solve_lp([-1], a_ub=[[-1]], b_ub=[-2])
        assert result.objective == pytest.approx(-2.0)
        assert result.x[0] == pytest.approx(2.0)

    def test_degenerate_objective(self):
        result = solve_lp([0, 0], a_ub=[[1, 1]], b_ub=[5])
        assert result.objective == 0.0

    def test_binding_budget(self):
        # The paper's Eq.2 shape: max perf proxy under a power budget.
        result = solve_lp([1, 1], a_ub=[[2, 3]], b_ub=[12])
        assert result.objective == pytest.approx(6.0)  # all on the cheap resource


class TestInfeasibleUnbounded:
    def test_infeasible(self):
        with pytest.raises(SolverError, match="infeasible"):
            solve_lp([1], a_eq=[[1]], b_eq=[5], a_ub=[[1]], b_ub=[1])

    def test_unbounded(self):
        with pytest.raises(SolverError, match="unbounded"):
            solve_lp([1, 1], a_ub=[[1, -1]], b_ub=[1])

    def test_contradictory_equalities(self):
        with pytest.raises(SolverError, match="infeasible"):
            solve_lp([1, 1], a_eq=[[1, 1], [1, 1]], b_eq=[2, 3])


class TestValidation:
    def test_empty_objective_rejected(self):
        with pytest.raises(SolverError):
            solve_lp([], a_ub=[[1]], b_ub=[1])

    def test_no_constraints_rejected(self):
        with pytest.raises(SolverError):
            solve_lp([1, 2])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(SolverError):
            solve_lp([1, 2], a_ub=[[1, 2, 3]], b_ub=[1])
        with pytest.raises(SolverError):
            solve_lp([1, 2], a_ub=[[1, 2]], b_ub=[1, 2])

    def test_half_specified_constraints_rejected(self):
        with pytest.raises(SolverError):
            solve_lp([1], a_ub=[[1]])

    def test_nan_rejected(self):
        with pytest.raises(SolverError):
            solve_lp([float("nan")], a_ub=[[1]], b_ub=[1])


class TestAgainstScipy:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_random_bounded_lps(self, n, m, seed):
        linprog = pytest.importorskip("scipy.optimize").linprog
        rng = np.random.default_rng(seed)
        c = rng.normal(size=n)
        a = rng.normal(size=(m, n))
        b = np.abs(rng.normal(size=m)) + 1.0
        # Add a box row to guarantee boundedness.
        a = np.vstack([a, np.ones(n)])
        b = np.append(b, 100.0)
        ours = solve_lp(c, a_ub=a, b_ub=b)
        ref = linprog(-c, A_ub=a, b_ub=b, bounds=[(0, None)] * n, method="highs")
        assert ref.status == 0
        assert ours.objective == pytest.approx(-ref.fun, abs=1e-6)


class TestAssignmentLp:
    def test_matches_hungarian(self):
        rng = np.random.default_rng(17)
        for _ in range(10):
            m = rng.normal(size=(4, 4)) * 5
            _, lp_total = lp_assignment_max(m)
            _, hung_total = solve_assignment_max(m)
            assert lp_total == pytest.approx(hung_total, abs=1e-6)

    def test_solution_is_integral_permutation(self):
        m = np.random.default_rng(3).normal(size=(5, 5))
        assignment, _ = lp_assignment_max(m)
        assert sorted(assignment) == list(range(5))

    def test_rectangular_padding(self):
        m = [[5.0, 1.0, 2.0], [1.0, 6.0, 2.0]]
        assignment, total = lp_assignment_max(m)
        assert assignment == [0, 1]
        assert total == pytest.approx(11.0)

    def test_assign_max_method_dispatch(self):
        m = [[2.0, 1.0], [1.0, 2.0]]
        for method in METHODS:
            assignment, total = assign_max(m, method=method)
            assert assignment == [0, 1]
            assert total == pytest.approx(4.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            assign_max([[1.0]], method="quantum")

    def test_empty_matrix_rejected(self):
        with pytest.raises(SolverError):
            lp_assignment_max(np.zeros((0, 0)))
