"""Shared fixtures for the Pocolo reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    REFERENCE_SPEC,
    best_effort_apps,
    latency_critical_apps,
    make_graph,
    make_xapian,
)
from repro.evaluation import fit_catalog


@pytest.fixture(scope="session")
def spec():
    """The Table I reference server."""
    return REFERENCE_SPEC


@pytest.fixture(scope="session")
def lc_apps():
    """All four latency-critical apps."""
    return latency_critical_apps()


@pytest.fixture(scope="session")
def be_apps():
    """All four best-effort apps."""
    return best_effort_apps()


@pytest.fixture(scope="session")
def xapian():
    """The xapian LC app (the motivation study's primary)."""
    return make_xapian()


@pytest.fixture(scope="session")
def graph():
    """The graph BE app (the most power-hungry co-runner)."""
    return make_graph()


@pytest.fixture(scope="session")
def catalog():
    """A fitted catalog shared across tests (seeded, reproducible)."""
    return fit_catalog(seed=7)


@pytest.fixture()
def rng():
    """A fresh seeded generator per test."""
    return np.random.default_rng(1234)
