"""Differential tests: every engine fast path equals its slow twin, bitwise.

The engine's contract is *bit-identity*, not approximation:

* the vectorized performance matrix reproduces the retained loop
  reference (``_build_performance_matrix_reference``) cell for cell;
* ``run_cluster(workers=N)`` and ``run_cluster(dedupe=True)`` reproduce
  the ``workers=1`` serial sweep exactly, across sim seeds and with a
  fault plan active (crashes, recovery, re-placement, cell faults);
* the pooled policy sweep reproduces the serial sweep.

Exact float equality (``==`` / ``np.array_equal``) is deliberate: any
last-bit drift means the fast path computed something different, and a
tolerance would let that rot silently.
"""

import numpy as np
import pytest

from repro.core.placement import (
    LcServerSide,
    _build_performance_matrix_reference,
    build_performance_matrix,
)
from repro.core.utility import (
    CobbDouglasParams,
    IndirectUtilityModel,
    LinearPowerParams,
)
from repro.engine.vectorized import (
    build_performance_matrix_vectorized,
    clear_engine_caches,
)
from repro.evaluation.colocation_eval import evaluate_policy
from repro.evaluation.pipeline import (
    cluster_plans,
    fit_catalog,
    placement_for_policy,
    run_policy,
)
from repro.faults.cluster import ClusterFaultPlan, ServerCrash
from repro.faults.schedule import FaultSchedule, MeterDrift, TelemetryGap
from repro.hwmodel.spec import ServerSpec
from repro.sim.cluster import run_cluster
from repro.sim.colocation import SimConfig

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def catalog():
    return fit_catalog(seed=7)


def _make_model(alpha0, a_cores, a_ways, p_static, p_core, p_way):
    return IndirectUtilityModel(
        perf=CobbDouglasParams(alpha0=alpha0, alphas=(a_cores, a_ways)),
        power=LinearPowerParams(p_static=p_static, p=(p_core, p_way)),
    )


def _flatten(result):
    """Every float an outcome reports, for exact comparison."""
    rows = []
    for o in result.outcomes:
        r = o.result
        rows.append((
            o.lc_name, o.be_name, o.level, r.duration_s,
            r.avg_be_throughput_norm, r.avg_be_throughput_abs,
            r.avg_lc_load_fraction, r.avg_power_w, r.power_utilization,
            r.energy_kwh, r.slo_violation_fraction,
        ))
    return rows


class TestMatrixDifferential:
    def test_fitted_catalog_matrix_bit_identical(self, catalog):
        servers = catalog.lc_server_sides()
        be_models = {n: f.model for n, f in catalog.be_fits.items()}
        reference = _build_performance_matrix_reference(
            servers, be_models, catalog.spec
        )
        vectorized = build_performance_matrix(servers, be_models, catalog.spec)
        assert vectorized.be_names == reference.be_names
        assert vectorized.lc_names == reference.lc_names
        assert np.array_equal(vectorized.values, reference.values)

    def test_cold_caches_bit_identical(self, catalog):
        servers = catalog.lc_server_sides()
        be_models = {n: f.model for n, f in catalog.be_fits.items()}
        reference = _build_performance_matrix_reference(
            servers, be_models, catalog.spec
        )
        clear_engine_caches()
        vectorized = build_performance_matrix_vectorized(
            servers, be_models, catalog.spec,
            levels=tuple(round(0.1 * i, 1) for i in range(1, 10)),
        )
        assert np.array_equal(vectorized.values, reference.values)

    @pytest.mark.parametrize("margin", [1.0, 1.2, 1.5])
    @pytest.mark.parametrize(
        "levels", [(0.5,), (0.1, 0.9), (0.25, 0.5, 0.75, 1.0)]
    )
    def test_synthetic_sweeps_bit_identical(self, margin, levels):
        spec = ServerSpec()
        servers = [
            LcServerSide(
                name=f"lc-{i}",
                model=_make_model(2.0 + i, 0.4 + 0.1 * i, 0.3, 40.0, 5.5, 1.5),
                provisioned_power_w=120.0 + 15.0 * i,
                peak_load=50.0 + 10.0 * i,
            )
            for i in range(3)
        ]
        be_models = {
            f"be-{i}": _make_model(1.0 + i, 0.6, 0.2 + 0.05 * i, 30.0, 4.0, 1.0)
            for i in range(3)
        }
        reference = _build_performance_matrix_reference(
            servers, be_models, spec, levels=levels, margin=margin
        )
        vectorized = build_performance_matrix(
            servers, be_models, spec, levels=levels, margin=margin
        )
        assert np.array_equal(vectorized.values, reference.values)

    def test_tight_budget_corner_cases_bit_identical(self):
        """Budgets near static power exercise the corner-rescue branch."""
        spec = ServerSpec(cores=6, llc_ways=8)
        servers = [
            LcServerSide(
                name="lc-tight",
                # High provisioning pressure: spare budget hovers near
                # the BE model's static power.
                model=_make_model(3.0, 0.5, 0.4, 45.0, 6.0, 2.0),
                provisioned_power_w=100.0,
                peak_load=40.0,
            )
        ]
        be_models = {
            "be-hungry": _make_model(1.5, 0.7, 0.3, 48.0, 5.0, 1.2),
            "be-light": _make_model(1.2, 0.3, 0.3, 10.0, 1.0, 0.4),
        }
        levels = (0.1, 0.5, 0.9, 1.0)
        reference = _build_performance_matrix_reference(
            servers, be_models, spec, levels=levels
        )
        vectorized = build_performance_matrix(
            servers, be_models, spec, levels=levels
        )
        assert np.array_equal(vectorized.values, reference.values)


class TestClusterDifferential:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_workers_bit_identical(self, catalog, seed):
        placement = placement_for_policy(catalog, "pocolo")
        plans = cluster_plans(catalog, placement, "pocolo")[:2]
        kwargs = dict(
            levels=(0.3, 0.7), duration_s=4.0, config=SimConfig(seed=seed)
        )
        serial = run_cluster(plans, catalog.spec, **kwargs)
        pooled = run_cluster(plans, catalog.spec, workers=2, **kwargs)
        assert _flatten(pooled) == _flatten(serial)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_dedupe_bit_identical(self, catalog, seed):
        placement = placement_for_policy(catalog, "pocolo")
        base = cluster_plans(catalog, placement, "pocolo")[:2]
        plans = [base[i % 2] for i in range(6)]  # replicated fleet
        kwargs = dict(
            levels=(0.3, 0.7), duration_s=4.0, config=SimConfig(seed=seed)
        )
        serial = run_cluster(plans, catalog.spec, **kwargs)
        deduped = run_cluster(plans, catalog.spec, dedupe=True, **kwargs)
        assert _flatten(deduped) == _flatten(serial)

    def test_faulted_run_bit_identical(self, catalog):
        placement = placement_for_policy(catalog, "pocolo")
        plans = cluster_plans(catalog, placement, "pocolo")[:3]
        fault_plan = ClusterFaultPlan(
            crashes=(
                ServerCrash(
                    lc_name=plans[0].lc_app.name,
                    at_level_index=1,
                    recover_at_level_index=3,
                ),
            ),
            cell_faults=FaultSchedule(faults=(
                MeterDrift(start_s=1.0, duration_s=2.0, rate_w_per_s=0.5),
                TelemetryGap(start_s=2.0, duration_s=1.0),
            )),
        )
        kwargs = dict(
            levels=(0.2, 0.4, 0.6, 0.8), duration_s=4.0,
            config=SimConfig(seed=5), fault_plan=fault_plan,
        )
        serial = run_cluster(plans, catalog.spec, **kwargs)
        pooled = run_cluster(plans, catalog.spec, workers=2, **kwargs)
        deduped = run_cluster(plans, catalog.spec, dedupe=True, **kwargs)
        assert _flatten(pooled) == _flatten(serial)
        assert _flatten(deduped) == _flatten(serial)
        for other in (pooled, deduped):
            assert (
                other.fault_report.crashes_handled,
                other.fault_report.recoveries_handled,
                other.fault_report.degraded_cells,
                other.fault_report.replacements,
            ) == (
                serial.fault_report.crashes_handled,
                serial.fault_report.recoveries_handled,
                serial.fault_report.degraded_cells,
                serial.fault_report.replacements,
            )

    def test_run_policy_knobs_bit_identical(self, catalog):
        kwargs = dict(levels=(0.4, 0.8), duration_s=4.0, seed=1)
        serial = run_policy(catalog, "pom", **kwargs)
        pooled = run_policy(catalog, "pom", workers=2, **kwargs)
        deduped = run_policy(catalog, "pom", dedupe=True, **kwargs)
        assert _flatten(pooled) == _flatten(serial)
        assert _flatten(deduped) == _flatten(serial)


class TestPipelineDifferential:
    def test_pooled_policy_sweep_bit_identical(self, catalog):
        kwargs = dict(
            placement_seeds=range(3), levels=(0.3, 0.7), duration_s=3.0
        )
        serial = evaluate_policy(catalog, "random", **kwargs)
        pooled = evaluate_policy(catalog, "random", workers=2, **kwargs)
        assert [_flatten(r) for r in pooled.runs] == [
            _flatten(r) for r in serial.runs
        ]
        assert pooled.be_throughput_by_server == serial.be_throughput_by_server
        assert pooled.cluster_power_utilization == serial.cluster_power_utilization
