"""Tests for repro.core.multires: the k-resource generalization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.multires import (
    DEFAULT_RESOURCE_NAMES,
    KResourceProfile,
    fit_k_model,
    integer_min_power_allocation_k,
    make_three_resource_app,
    profile_k_resources,
    profiling_grid_k,
)
from repro.errors import CapacityError, ConfigError, ModelFitError


@pytest.fixture()
def app():
    return make_three_resource_app()


@pytest.fixture()
def fitted(app):
    rng = np.random.default_rng(3)
    grid = profiling_grid_k(app.limits, points_per_axis=4)
    samples = profile_k_resources(app, grid, rng)
    return fit_k_model(samples)


class TestKResourceProfile:
    def test_full_allocation_normalizes_to_one(self, app):
        assert app.normalized_throughput(app.limits) == pytest.approx(1.0)

    def test_zero_resource_zero_performance(self, app):
        assert app.normalized_throughput((0, 5, 5)) == 0.0

    def test_monotone_in_each_axis(self, app):
        base = app.normalized_throughput((4, 8, 4))
        assert app.normalized_throughput((6, 8, 4)) > base
        assert app.normalized_throughput((4, 10, 4)) > base
        assert app.normalized_throughput((4, 8, 6)) > base

    def test_power_additive(self, app):
        expected = app.static_w + sum(
            x * px for x, px in zip((3, 5, 2), app.p)
        )
        assert app.active_power_w((3, 5, 2)) == pytest.approx(expected)

    def test_preference_vector_matches_calibration(self):
        app = make_three_resource_app(preferences=(0.30, 0.25, 0.45))
        assert app.true_preference_vector() == pytest.approx((0.30, 0.25, 0.45))

    def test_full_power_matches_calibration(self):
        app = make_three_resource_app(full_active_w=95.0, static_w=4.0)
        assert app.active_power_w(app.limits) == pytest.approx(95.0)

    def test_arity_checked(self, app):
        with pytest.raises(ConfigError):
            app.normalized_throughput((1, 2))
        with pytest.raises(ConfigError):
            app.active_power_w((1, 2, 3, 4))

    def test_validation(self):
        with pytest.raises(ConfigError):
            KResourceProfile("x", alphas=(0.5, 0.5), p=(1.0,),
                             limits=(4, 4), names=("a", "b"))
        with pytest.raises(ConfigError):
            make_three_resource_app(full_active_w=1.0, static_w=4.0)


class TestGridAndProfiling:
    def test_grid_covers_extremes(self, app):
        grid = profiling_grid_k(app.limits, points_per_axis=3)
        assert (1, 1, 1) in grid
        assert tuple(app.limits) in grid

    def test_grid_size(self, app):
        assert len(profiling_grid_k(app.limits, points_per_axis=3)) == 27

    def test_grid_validation(self, app):
        with pytest.raises(ConfigError):
            profiling_grid_k(app.limits, points_per_axis=1)

    def test_noiseless_profiling_matches_truth(self, app):
        grid = profiling_grid_k(app.limits, points_per_axis=3)
        samples = profile_k_resources(app, grid, rng=None, perf_noise=0.0,
                                      power_noise=0.0)
        for s, point in zip(samples, grid):
            assert s.perf == pytest.approx(app.normalized_throughput(point))
            assert s.power_w == pytest.approx(app.active_power_w(point))

    def test_empty_grid_rejected(self, app):
        with pytest.raises(ConfigError):
            profile_k_resources(app, [])


class TestFitKModel:
    def test_r2_bands(self, fitted):
        _, r2_perf, r2_power = fitted
        assert 0.80 <= r2_perf <= 1.0
        assert 0.90 <= r2_power <= 1.0

    def test_preferences_recovered(self, app, fitted):
        model, _, _ = fitted
        pref = model.preference_vector()
        true = dict(zip(DEFAULT_RESOURCE_NAMES, app.true_preference_vector()))
        for name in DEFAULT_RESOURCE_NAMES:
            assert pref[name] == pytest.approx(true[name], abs=0.06)

    def test_exact_recovery_without_noise_or_saturation(self):
        app = KResourceProfile(
            "exact", alphas=(0.4, 0.3, 0.3), p=(2.0, 1.0, 3.0),
            limits=(12, 20, 10), static_w=5.0, saturation_kappa=0.0,
        )
        grid = profiling_grid_k(app.limits, points_per_axis=4)
        samples = profile_k_resources(app, grid, rng=None, perf_noise=0.0,
                                      power_noise=0.0)
        model, r2_perf, r2_power = fit_k_model(samples)
        assert r2_perf == pytest.approx(1.0)
        assert r2_power == pytest.approx(1.0)
        assert model.perf.alphas == pytest.approx((0.4, 0.3, 0.3))
        assert model.power.p == pytest.approx((2.0, 1.0, 3.0))

    def test_too_few_samples_rejected(self, app):
        grid = profiling_grid_k(app.limits, points_per_axis=2)[:3]
        samples = profile_k_resources(app, grid, rng=None)
        with pytest.raises(ModelFitError):
            fit_k_model(samples)


class TestIntegerProjectionK:
    def test_feasible_and_locally_minimal(self, fitted, app):
        model, _, _ = fitted
        target = 0.4 * model.performance(tuple(float(x) for x in app.limits))
        point = integer_min_power_allocation_k(model, target, app.limits)
        assert model.performance(point) >= target
        cost = model.power_w(point)
        for j in range(3):
            neighbor = list(point)
            neighbor[j] -= 1
            if neighbor[j] >= 1 and model.performance(tuple(neighbor)) >= target:
                assert model.power_w(tuple(neighbor)) >= cost - 1e-9

    def test_unreachable_target_raises(self, fitted, app):
        model, _, _ = fitted
        full = model.performance(tuple(float(x) for x in app.limits))
        with pytest.raises(CapacityError):
            integer_min_power_allocation_k(model, full * 2.0, app.limits)

    def test_arity_checked(self, fitted):
        model, _, _ = fitted
        with pytest.raises(ConfigError):
            integer_min_power_allocation_k(model, 0.1, (12, 20))

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.9))
    def test_projection_scales_with_target(self, frac):
        app = make_three_resource_app()
        grid = profiling_grid_k(app.limits, points_per_axis=4)
        samples = profile_k_resources(app, grid, rng=None, perf_noise=0.0,
                                      power_noise=0.0)
        model, _, _ = fit_k_model(samples)
        full = model.performance(tuple(float(x) for x in app.limits))
        point = integer_min_power_allocation_k(model, frac * full, app.limits)
        assert model.performance(point) >= frac * full
        assert all(1 <= point[j] <= app.limits[j] for j in range(3))
