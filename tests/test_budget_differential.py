"""Differential and drill tests for budgeted cluster runs.

The budget layer must not cost the repo its two hardest-won properties:
bit-exact batched/object equivalence and bit-identical checkpoint
resume.  Every comparison here is exact (``==`` on raw floats), reusing
:func:`tests.test_batched_differential.assert_outcome_equal`.

The headline regression is the kill-the-arbiter drill (the acceptance
criterion of the budget subsystem): with grants outstanding, the
arbiter crashes mid-run — every server must be back at its provisioned
cap within one lease period, both budget invariants must record zero
violations in enforce mode, and a checkpoint resume must reproduce the
telemetry bit for bit.
"""

import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.budget import BudgetConfig, plan_budget
from repro.evaluation.pipeline import (
    cluster_plans,
    fit_catalog,
    placement_for_policy,
    run_policy,
)
from repro.faults.cluster import ClusterFaultPlan, ServerCrash, ServerRejoin
from repro.faults.schedule import (
    ArbiterCrash,
    FaultSchedule,
    GrantDelay,
    GrantLoss,
    MeterDrift,
    RackBreakerTrip,
    RackPowerDerate,
)
from repro.guard.invariants import GuardConfig
from repro.runtime import Checkpoint, run_cluster_checkpointed
from repro.sim.cluster import run_cluster
from repro.sim.colocation import SimConfig
from tests.test_batched_differential import assert_outcome_equal

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

BUDGET = BudgetConfig(arbiter_period_s=2.0, lease_s=4.0, rack_size=2)


@pytest.fixture(scope="module")
def catalog():
    return fit_catalog(seed=7)


@pytest.fixture(scope="module")
def fleet(catalog):
    """Four uniquely-named LC servers (budget trees need unique leaves)."""
    placement = placement_for_policy(catalog, "pocolo")
    return cluster_plans(catalog, placement, "pocolo")


@pytest.fixture(scope="module")
def infra_battery():
    """Every power-infrastructure fault kind in one schedule."""
    return FaultSchedule([
        RackPowerDerate(start_s=3.0, duration_s=6.0, factor=0.55,
                        rack="rack0"),
        RackBreakerTrip(start_s=12.0, duration_s=3.0, residual=0.3,
                        rack="rack1"),
        ArbiterCrash(start_s=7.0, duration_s=4.0),
        GrantLoss(start_s=16.0, duration_s=2.0),
        GrantDelay(start_s=1.0, duration_s=2.0, delay_s=1.5),
    ])


class TestBudgetedDifferential:
    """Budgeted sweeps: object oracle == batched core, bit for bit."""

    def test_clean_budgeted_run_bit_exact(self, catalog, fleet):
        kwargs = dict(
            levels=(0.3, 0.7), duration_s=8.0,
            config=SimConfig(warmup_s=2.0, seed=1),
            guard=GuardConfig(), budget=BUDGET,
        )
        base = run_cluster(fleet, catalog.spec, **kwargs)
        got = run_cluster(fleet, catalog.spec, engine="batched", **kwargs)
        assert len(base.outcomes) == len(got.outcomes) == 8
        for a, b in zip(base.outcomes, got.outcomes):
            assert_outcome_equal(a, b, "clean-budgeted")
        # The budget plan itself is deterministic.
        assert base.budget_report == got.budget_report

    def test_full_fault_battery_bit_exact(self, catalog, fleet, infra_battery):
        fault_plan = ClusterFaultPlan(
            crashes=(ServerCrash(fleet[1].lc_app.name, at_level_index=1),),
            rejoins=(ServerRejoin(fleet[1].lc_app.name, at_level_index=2),),
            cell_faults=FaultSchedule([
                MeterDrift(start_s=2.0, duration_s=3.0, rate_w_per_s=3.0),
            ]),
            infra_faults=infra_battery,
        )
        kwargs = dict(
            levels=(0.2, 0.5, 0.8), duration_s=7.0,
            config=SimConfig(warmup_s=2.0, seed=5),
            fault_plan=fault_plan, guard=GuardConfig(), budget=BUDGET,
        )
        base = run_cluster(fleet, catalog.spec, **kwargs)
        got = run_cluster(fleet, catalog.spec, engine="batched", **kwargs)
        assert len(base.outcomes) == len(got.outcomes)
        for a, b in zip(base.outcomes, got.outcomes):
            assert_outcome_equal(a, b, "battery-budgeted")
        assert base.budget_report == got.budget_report
        assert base.fault_report is not None
        assert base.fault_report.rejoins_handled == 1

    def test_effective_cap_series_present_and_bounded(self, catalog, fleet):
        result = run_cluster(
            fleet, catalog.spec, levels=(0.5,), duration_s=6.0,
            config=SimConfig(warmup_s=1.0, seed=0), budget=BUDGET,
        )
        for outcome in result.outcomes:
            series = outcome.result.telemetry._series
            assert "effective_cap_w" in series
            assert all(v > 0.0 for v in series["effective_cap_w"].values)

    def test_run_policy_budgeted_engines_agree(self, catalog):
        kwargs = dict(levels=(0.4, 0.8), duration_s=6.0,
                      sim_config=SimConfig(seed=3), budget=BUDGET)
        base = run_policy(catalog, "pocolo", **kwargs)
        got = run_policy(catalog, "pocolo", engine="batched", **kwargs)
        assert base.budget_report is not None
        for a, b in zip(base.outcomes, got.outcomes):
            assert_outcome_equal(a, b, "policy-budgeted")


class TestBudgetedCheckpointResume:
    """Budgeted checkpoints resume bit-identically, either engine."""

    def test_partial_resume_cross_engine(
        self, catalog, fleet, infra_battery, tmp_path
    ):
        fault_plan = ClusterFaultPlan(infra_faults=infra_battery)
        kwargs = dict(
            levels=(0.3, 0.7), duration_s=8.0,
            config=SimConfig(warmup_s=2.0, seed=3),
            fault_plan=fault_plan, guard=GuardConfig(), budget=BUDGET,
        )
        clean = run_cluster_checkpointed(
            fleet, catalog.spec, tmp_path / "clean.ckpt", **kwargs
        )
        path = tmp_path / "clean.ckpt"
        checkpoint = Checkpoint.load(path)
        completed = checkpoint.payload["completed"]
        survivors = {i: completed[i] for i in sorted(completed)[:3]}
        Checkpoint(
            run_key=checkpoint.run_key,
            payload={**checkpoint.payload, "completed": survivors},
        ).save(path)
        resumed = run_cluster_checkpointed(
            fleet, catalog.spec, path, resume=True, engine="batched",
            **kwargs,
        )
        for a, b in zip(clean.outcomes, resumed.outcomes):
            assert_outcome_equal(a, b, "budgeted-resume")

    def test_budget_config_changes_run_key(self, catalog, fleet, tmp_path):
        from repro.errors import CheckpointError

        kwargs = dict(
            levels=(0.5,), duration_s=4.0, config=SimConfig(seed=0),
        )
        run_cluster_checkpointed(
            fleet, catalog.spec, tmp_path / "a.ckpt", budget=BUDGET, **kwargs
        )
        with pytest.raises(CheckpointError):
            run_cluster_checkpointed(
                fleet, catalog.spec, tmp_path / "a.ckpt", resume=True,
                budget=BudgetConfig(arbiter_period_s=2.0, lease_s=6.0),
                **kwargs,
            )


#: The drill geometry: 2 levels x 10 s, arbiter killed at 7 s with
#: leases outstanding, never recovering.  Shared by the in-process
#: assertions and the SIGKILL child below.
DRILL_LEVELS = (0.4, 0.8)
DRILL_DURATION_S = 10.0
DRILL_CRASH_S = 7.0
DRILL_PLAN = ClusterFaultPlan(infra_faults=FaultSchedule([
    ArbiterCrash(start_s=DRILL_CRASH_S, duration_s=1e9),
]))


class TestKillTheArbiterDrill:
    """Arbiter dies with grants outstanding; the lease protocol holds."""

    @pytest.fixture(scope="class")
    def drill(self, catalog, fleet):
        guard = GuardConfig(mode="enforce")
        result = run_cluster(
            fleet, catalog.spec, levels=DRILL_LEVELS,
            duration_s=DRILL_DURATION_S,
            config=SimConfig(warmup_s=2.0, seed=2),
            fault_plan=DRILL_PLAN, guard=guard, budget=BUDGET,
        )
        plan = plan_budget(
            fleet, catalog.spec, DRILL_LEVELS, DRILL_DURATION_S, BUDGET,
            fault_plan=DRILL_PLAN, guard=guard,
        )
        return result, plan

    def test_grants_were_outstanding_at_the_crash(self, drill):
        _, plan = drill
        assert plan.report.stats.grants_issued > 0
        assert plan.report.stats.skipped_ticks > 0
        assert plan.report.stats.grants_expired > 0

    def test_every_server_reverts_within_one_lease(self, fleet, drill):
        _, plan = drill
        floors = {p.lc_app.name: float(p.provisioned_power_w) for p in fleet}
        # The last grants leave at the final pre-crash tick; one lease
        # later every cap must sit at the provisioned fail-safe floor.
        last_tick_s = max(
            t for t in (
                i * BUDGET.arbiter_period_s for i in range(1000)
            ) if t < DRILL_CRASH_S
        )
        settle_s = last_tick_s + BUDGET.lease_s
        assert settle_s <= DRILL_CRASH_S + BUDGET.lease_s
        total_s = len(DRILL_LEVELS) * DRILL_DURATION_S
        for level_index in range(len(DRILL_LEVELS)):
            start_s = level_index * DRILL_DURATION_S
            for plan_ in fleet:
                name = plan_.lc_app.name
                sched = plan.schedule_for(name, level_index)
                assert sched is not None
                probe = max(settle_s, start_s) + 1e-3
                while probe < start_s + DRILL_DURATION_S:
                    assert sched.cap_at(probe - start_s) == floors[name], (
                        f"{name} level {level_index} still off-floor at "
                        f"{probe}s"
                    )
                    probe += BUDGET.arbiter_period_s
        assert total_s > settle_s  # the drill actually exercises the revert

    def test_zero_budget_violations_in_enforce_mode(self, drill):
        result, plan = drill
        # run_cluster completed (enforce mode raises on violation) and
        # both budget invariants stayed clean.
        audit = result.budget_report.guard_report
        assert audit is not None
        assert audit.mode == "enforce"
        assert audit.checks > 0
        assert audit.total_violations == 0
        assert plan.report.guard_report.total_violations == 0

    def test_resume_telemetry_bit_identical(
        self, catalog, fleet, drill, tmp_path
    ):
        result, _ = drill
        kwargs = dict(
            levels=DRILL_LEVELS, duration_s=DRILL_DURATION_S,
            config=SimConfig(warmup_s=2.0, seed=2),
            fault_plan=DRILL_PLAN, guard=GuardConfig(mode="enforce"),
            budget=BUDGET,
        )
        path = tmp_path / "drill.ckpt"
        first = run_cluster_checkpointed(fleet, catalog.spec, path, **kwargs)
        checkpoint = Checkpoint.load(path)
        completed = checkpoint.payload["completed"]
        survivors = {i: completed[i] for i in sorted(completed)[:2]}
        Checkpoint(
            run_key=checkpoint.run_key,
            payload={**checkpoint.payload, "completed": survivors},
        ).save(path)
        resumed = run_cluster_checkpointed(
            fleet, catalog.spec, path, resume=True, engine="batched",
            **kwargs,
        )
        for a, b in zip(result.outcomes, first.outcomes):
            assert_outcome_equal(a, b, "drill-checkpointed")
        for a, b in zip(result.outcomes, resumed.outcomes):
            assert_outcome_equal(a, b, "drill-resumed")


_DRILL_SNIPPET = """\
from repro.budget import BudgetConfig
from repro.evaluation.pipeline import (
    cluster_plans, fit_catalog, placement_for_policy,
)
from repro.faults.cluster import ClusterFaultPlan
from repro.faults.schedule import ArbiterCrash, FaultSchedule
from repro.guard.invariants import GuardConfig
from repro.sim.colocation import SimConfig


def build_drill():
    catalog = fit_catalog(seed=7)
    placement = placement_for_policy(catalog, "pocolo")
    fleet = cluster_plans(catalog, placement, "pocolo")
    kwargs = dict(
        levels=(0.4, 0.8), duration_s=60.0,
        config=SimConfig(warmup_s=2.0, seed=2),
        fault_plan=ClusterFaultPlan(infra_faults=FaultSchedule([
            ArbiterCrash(start_s=30.0, duration_s=1e9),
        ])),
        guard=GuardConfig(mode="enforce"),
        budget=BudgetConfig(arbiter_period_s=2.0, lease_s=4.0, rack_size=2),
    )
    return fleet, catalog.spec, kwargs
"""

_DRILL_CHILD = _DRILL_SNIPPET + """

if __name__ == "__main__":
    import sys

    from repro.runtime import run_cluster_checkpointed

    fleet, spec, kwargs = build_drill()
    run_cluster_checkpointed(
        fleet, spec, sys.argv[1], resume=True, checkpoint_every=1, **kwargs
    )
"""


class TestDrillSigkillResume:
    """The full drill: SIGKILL the budgeted sweep, resume, compare."""

    def test_sigkill_then_resume(self, tmp_path):
        script = tmp_path / "drill_child.py"
        script.write_text(_DRILL_CHILD)
        ckpt = tmp_path / "drill.ckpt"
        child = subprocess.Popen(
            [sys.executable, str(script), str(ckpt)],
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 120.0
            progressed = False
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                if ckpt.exists():
                    extra = Checkpoint.load(ckpt).extra
                    if extra.get("cells_done", 0) >= 1:
                        progressed = True
                        break
                time.sleep(0.02)
            assert progressed, (
                "child finished or stalled before the kill: "
                f"{child.stderr.read().decode(errors='replace')}"
            )
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL

        namespace = {}
        exec(_DRILL_SNIPPET, namespace)
        fleet, spec, kwargs = namespace["build_drill"]()
        resumed = run_cluster_checkpointed(
            fleet, spec, ckpt, resume=True, **kwargs
        )
        clean = run_cluster(fleet, spec, **kwargs)
        assert len(resumed.outcomes) == len(clean.outcomes) == 8
        for a, b in zip(clean.outcomes, resumed.outcomes):
            assert_outcome_equal(a, b, "drill-sigkill-resume")
        assert resumed.budget_report.guard_report.total_violations == 0
