"""Tests for repro.analysis.stats: bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, paired_diff_ci, relative_gain_ci
from repro.errors import ConfigError


class TestBootstrapCi:
    def test_ci_brackets_the_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, size=50)
        summary = bootstrap_ci(data, seed=1)
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.n == 50

    def test_ci_covers_true_mean_mostly(self):
        rng = np.random.default_rng(1)
        hits = 0
        for trial in range(40):
            data = rng.normal(5.0, 1.0, size=30)
            s = bootstrap_ci(data, n_boot=400, seed=trial)
            hits += s.ci_low <= 5.0 <= s.ci_high
        assert hits >= 32  # ~95 % nominal, allow slack

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(2)
        small = bootstrap_ci(rng.normal(0, 1, size=10), seed=3)
        large = bootstrap_ci(rng.normal(0, 1, size=1000), seed=3)
        assert large.half_width < small.half_width

    def test_deterministic_by_seed(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        a = bootstrap_ci(data, seed=9)
        b = bootstrap_ci(data, seed=9)
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)

    def test_custom_statistic(self):
        data = [1.0, 2.0, 100.0]
        s = bootstrap_ci(data, statistic=np.median, seed=0)
        assert s.mean == 2.0

    def test_excludes_zero(self):
        s = bootstrap_ci([5.0, 6.0, 7.0, 5.5, 6.5], seed=0)
        assert s.excludes_zero()
        s0 = bootstrap_ci([-1.0, 1.0, -0.5, 0.5, 0.1, -0.1], seed=0)
        assert not s0.excludes_zero()

    def test_validation(self):
        with pytest.raises(ConfigError):
            bootstrap_ci([1.0])
        with pytest.raises(ConfigError):
            bootstrap_ci([1.0, 2.0], alpha=0.0)
        with pytest.raises(ConfigError):
            bootstrap_ci([1.0, 2.0], n_boot=10)


class TestPairedDiff:
    def test_detects_consistent_improvement(self):
        rng = np.random.default_rng(3)
        base = rng.normal(1.0, 0.5, size=20)
        improved = base + rng.normal(0.1, 0.02, size=20)  # +0.1 paired
        s = paired_diff_ci(improved, base, seed=4)
        assert s.excludes_zero()
        assert s.mean == pytest.approx(0.1, abs=0.02)

    def test_pairing_beats_unpaired_on_shared_noise(self):
        rng = np.random.default_rng(4)
        shared = rng.normal(0.0, 5.0, size=25)  # big shared variance
        base = 1.0 + shared
        improved = 1.05 + shared
        paired = paired_diff_ci(improved, base, seed=5)
        assert paired.excludes_zero()  # pairing removes the shared noise

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            paired_diff_ci([1.0, 2.0], [1.0])


class TestRelativeGain:
    def test_known_gain(self):
        base = [1.0] * 20
        new = [1.2] * 20
        s = relative_gain_ci(new, base, seed=6)
        assert s.mean == pytest.approx(0.2)
        assert s.excludes_zero()

    def test_noisy_gain_bracketed(self):
        rng = np.random.default_rng(7)
        base = rng.normal(1.0, 0.05, size=30)
        new = rng.normal(1.15, 0.05, size=30)
        s = relative_gain_ci(new, base, seed=8)
        realized = float(np.mean(new) / np.mean(base) - 1.0)
        assert s.ci_low <= realized <= s.ci_high
        assert 0.08 <= s.ci_low and s.ci_high <= 0.25

    def test_validation(self):
        with pytest.raises(ConfigError):
            relative_gain_ci([1.0], [1.0, 2.0])
        with pytest.raises(ConfigError):
            relative_gain_ci([1.0, 2.0], [0.0, 0.0])
