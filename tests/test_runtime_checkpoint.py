"""Crash-safe runtime tests: atomic writes, checkpoint codec, resume.

The contract under test (docs/RECOVERY.md):

* :mod:`repro.runtime.atomic` — a reader can never observe a torn file;
* :class:`repro.runtime.checkpoint.Checkpoint` — every corruption mode
  (truncation, bit rot, alien/newer files, foreign runs) is refused
  *before* unpickling;
* controller state snapshots (managers, cap loop, RNG streams)
  round-trip exactly;
* :func:`repro.runtime.sweep.run_cluster_checkpointed` — checkpoint →
  kill → resume equals the uninterrupted run bit-for-bit, pinned with
  Hypothesis across seeds / worker counts / fault plans and with a real
  SIGKILL of a mid-flight subprocess.
"""

import hashlib
import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.server_manager import HeraclesLikeManager, PowerOptimizedManager
from repro.engine.parallel import SupervisedPool
from repro.errors import CheckpointError, ConfigError
from repro.evaluation.pipeline import PomFactory
from repro.faults.cluster import ClusterFaultPlan, ServerCrash
from repro.faults.schedule import (
    FaultSchedule,
    MeterDrift,
    TelemetryGap,
    rng_from_state,
    rng_state,
)
from repro.hwmodel.capping import PowerCapController
from repro.hwmodel.meter import PowerMeter
from repro.runtime import (
    CHECKPOINT_MAGIC,
    Checkpoint,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    run_cluster_checkpointed,
    sweep_run_key,
)
from repro.sim.cluster import ServerPlan, run_cluster
from repro.sim.colocation import SimConfig, build_colocated_server

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _flatten(result):
    """Every float an outcome reports, for exact comparison."""
    rows = []
    for o in result.outcomes:
        r = o.result
        rows.append((
            o.lc_name, o.be_name, o.level, r.duration_s,
            r.avg_be_throughput_norm, r.avg_be_throughput_abs,
            r.avg_lc_load_fraction, r.avg_power_w, r.power_utilization,
            r.energy_kwh, r.slo_violation_fraction,
        ))
    return rows


def _plans(catalog, pairs):
    """Content-addressable plans (frozen-dataclass factories, no lambdas)."""
    out = []
    for lc_name, be_name in pairs:
        lc = catalog.lc_apps[lc_name]
        out.append(ServerPlan(
            lc_app=lc,
            be_app=catalog.be_apps[be_name] if be_name else None,
            provisioned_power_w=lc.peak_server_power_w(),
            manager_factory=PomFactory(catalog.lc_fits[lc_name].model),
        ))
    return out


def _fault_plan(plans):
    return ClusterFaultPlan(
        crashes=(ServerCrash(plans[0].lc_app.name, at_level_index=1),),
        cell_faults=FaultSchedule(faults=(
            MeterDrift(start_s=1.0, duration_s=2.0, rate_w_per_s=0.5),
            TelemetryGap(start_s=2.0, duration_s=1.0),
        )),
    )


class TestAtomicWrites:
    def test_bytes_roundtrip_and_path(self, tmp_path):
        target = tmp_path / "artifact.bin"
        returned = atomic_write_bytes(target, b"\x00\x01payload")
        assert returned == target
        assert target.read_bytes() == b"\x00\x01payload"

    def test_replaces_existing_content_completely(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "old content, long enough to linger")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_debris_after_success(self, tmp_path):
        atomic_write_text(tmp_path / "clean.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["clean.txt"]

    def test_failed_replace_preserves_target_and_cleans_up(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "keep.json"
        atomic_write_json(target, {"generation": 1})

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_json(target, {"generation": 2})
        monkeypatch.undo()
        assert json.loads(target.read_text()) == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["keep.json"]

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "er" / "artifact.json"
        atomic_write_json(target, [1, 2])
        assert json.loads(target.read_text()) == [1, 2]

    def test_json_trailing_newline_and_sort(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"b": 1, "a": 2}, sort_keys=True)
        text = target.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')


class TestCheckpointCodec:
    def _save(self, tmp_path, **overrides):
        fields = dict(
            run_key="k" * 64,
            payload={"completed": {0: (1.0, 2.0)}, "note": "hi"},
            extra={"cells_done": 1},
        )
        fields.update(overrides)
        path = tmp_path / "sweep.ckpt"
        Checkpoint(**fields).save(path)
        return path

    def test_roundtrip(self, tmp_path):
        path = self._save(tmp_path)
        loaded = Checkpoint.load(path, expect_run_key="k" * 64)
        assert loaded.run_key == "k" * 64
        assert loaded.payload == {"completed": {0: (1.0, 2.0)}, "note": "hi"}
        assert loaded.extra == {"cells_done": 1}
        assert loaded.version == 1

    def test_header_line_is_greppable_json(self, tmp_path):
        path = self._save(tmp_path)
        header = json.loads(path.read_bytes().split(b"\n", 1)[0])
        assert header["magic"] == CHECKPOINT_MAGIC
        assert header["extra"] == {"cells_done": 1}
        assert header["payload_bytes"] > 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint.load(tmp_path / "absent.ckpt")

    def test_no_header_newline(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b"just-bytes-no-newline")
        with pytest.raises(CheckpointError, match="no header line"):
            Checkpoint.load(path)

    def test_header_not_json(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b"{broken json\npayload")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            Checkpoint.load(path)

    def test_alien_magic(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b'{"magic": "other-tool"}\n')
        with pytest.raises(CheckpointError, match="not a pocolo checkpoint"):
            Checkpoint.load(path)

    def test_newer_version_refused(self, tmp_path):
        path = self._save(tmp_path, version=2)
        with pytest.raises(CheckpointError, match="unsupported version 2"):
            Checkpoint.load(path)

    def test_non_integer_version_refused(self, tmp_path):
        header = json.dumps({"magic": CHECKPOINT_MAGIC, "version": "1"})
        path = tmp_path / "x.ckpt"
        path.write_bytes(header.encode() + b"\n")
        with pytest.raises(CheckpointError, match="unsupported version"):
            Checkpoint.load(path)

    def test_truncation_detected(self, tmp_path):
        path = self._save(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        with pytest.raises(CheckpointError, match="truncated"):
            Checkpoint.load(path)

    def test_bit_rot_detected(self, tmp_path):
        path = self._save(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte, length unchanged
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            Checkpoint.load(path)

    def test_foreign_run_key_refused(self, tmp_path):
        path = self._save(tmp_path)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            Checkpoint.load(path, expect_run_key="m" * 64)

    def test_missing_run_key_refused(self, tmp_path):
        payload = pickle.dumps(None)
        header = json.dumps({
            "magic": CHECKPOINT_MAGIC, "version": 1,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
        })
        path = tmp_path / "x.ckpt"
        path.write_bytes(header.encode() + b"\n" + payload)
        with pytest.raises(CheckpointError, match="lacks a run_key"):
            Checkpoint.load(path)

    def test_corruption_never_reaches_unpickle(self, tmp_path):
        """A tampered payload fails the checksum, not the unpickler."""
        path = self._save(tmp_path)
        blob = path.read_bytes()
        header, payload = blob.split(b"\n", 1)
        evil = b"cos\nsystem\n(S'true'\ntR."  # classic pickle bomb shape
        path.write_bytes(header + b"\n" + evil[:len(payload)].ljust(len(payload), b"."))
        with pytest.raises(CheckpointError, match="checksum"):
            Checkpoint.load(path)


class TestControllerStateRoundTrip:
    def _driven_manager(self, catalog, cls, steps=25, **kwargs):
        lc = catalog.lc_apps["xapian"]
        server = build_colocated_server(
            catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w()
        )
        if cls is PowerOptimizedManager:
            kwargs.setdefault("model", catalog.lc_fits["xapian"].model)
        manager = cls(server, **kwargs)
        load = 0.4 * lc.peak_load
        for _ in range(steps):
            alloc = server.allocation_of(lc.name)
            manager.control_step(load, lc.slack(load, alloc))
        return manager, lc

    def test_pom_manager_roundtrip(self, catalog):
        a, lc = self._driven_manager(catalog, PowerOptimizedManager)
        b, _ = self._driven_manager(catalog, PowerOptimizedManager, steps=0)
        snapshot = a.export_state()
        b.import_state(snapshot)
        assert b.export_state() == snapshot
        assert b.stats == a.stats

    def test_heracles_manager_roundtrip_continues_rng_stream(self, catalog):
        a, lc = self._driven_manager(
            catalog, HeraclesLikeManager, path="random", seed=3
        )
        b, _ = self._driven_manager(
            catalog, HeraclesLikeManager, steps=0, path="random", seed=99
        )
        b.import_state(a.export_state())
        assert b.export_state() == a.export_state()
        # The random walk continues bit-identically despite seed=99.
        load = 0.4 * lc.peak_load
        for _ in range(10):
            a.control_step(load, 0.5)
            b.control_step(load, 0.5)
        assert b.export_state() == a.export_state()

    def test_cross_class_restore_refused(self, catalog):
        pom, _ = self._driven_manager(catalog, PowerOptimizedManager, steps=0)
        her, _ = self._driven_manager(catalog, HeraclesLikeManager, steps=0)
        with pytest.raises(CheckpointError, match="HeraclesLikeManager"):
            pom.import_state(her.export_state())

    def test_snapshot_is_plain_data(self, catalog):
        manager, _ = self._driven_manager(
            catalog, HeraclesLikeManager, path="random", seed=3
        )
        snapshot = manager.export_state()
        # Pickles and JSON-ish survives a deep copy through pickle.
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def _driven_capper(self, catalog, steps=30):
        lc = catalog.lc_apps["xapian"]
        server = build_colocated_server(
            catalog.spec, lc, provisioned_power_w=120.0
        )
        meter = PowerMeter(
            source=server.power_w, rng=np.random.default_rng(0),
            noise_sigma_w=0.5,
        )
        capper = PowerCapController(server, meter)
        for k in range(steps):
            capper.step(k * 0.1)
        return capper

    def test_cap_controller_roundtrip(self, catalog):
        a = self._driven_capper(catalog)
        b = self._driven_capper(catalog, steps=0)
        snapshot = a.export_state()
        b.import_state(snapshot)
        assert b.export_state() == snapshot
        assert b.stats == a.stats
        assert b.safe_mode == a.safe_mode

    def test_cap_controller_foreign_snapshot_refused(self, catalog):
        capper = self._driven_capper(catalog, steps=0)
        with pytest.raises(CheckpointError):
            capper.import_state({"controller": "SomethingElse", "stats": {}})


class TestRngSnapshots:
    def test_stream_continues_exactly(self):
        rng = np.random.default_rng(42)
        rng.random(17)  # advance mid-stream
        snapshot = rng_state(rng)
        expected = rng.random(8)
        resumed = rng_from_state(snapshot)
        assert np.array_equal(resumed.random(8), expected)

    def test_snapshot_is_a_copy(self):
        rng = np.random.default_rng(1)
        snapshot = rng_state(rng)
        rng.random(100)  # must not mutate the snapshot
        assert np.array_equal(
            rng_from_state(snapshot).random(4),
            rng_from_state(rng_state(np.random.default_rng(1))).random(4),
        )

    def test_unknown_bit_generator_refused(self):
        with pytest.raises(CheckpointError, match="unknown bit generator"):
            rng_from_state({"bit_generator": "MersennePrime", "state": {}})

    def test_malformed_state_refused(self):
        with pytest.raises(CheckpointError, match="malformed"):
            rng_from_state({"bit_generator": "PCG64", "state": "garbage"})

    def test_snapshot_pickles(self):
        snapshot = rng_state(np.random.default_rng(7))
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


class TestCheckpointedSweep:
    KWARGS = dict(levels=[0.3, 0.7], duration_s=4.0, config=SimConfig(seed=2))

    def test_fresh_run_equals_run_cluster(self, catalog, tmp_path):
        plans = _plans(catalog, [("xapian", "rnn"), ("sphinx", "graph")])
        clean = run_cluster(plans, catalog.spec, **self.KWARGS)
        checkpointed = run_cluster_checkpointed(
            plans, catalog.spec, tmp_path / "sweep.ckpt", **self.KWARGS
        )
        assert _flatten(checkpointed) == _flatten(clean)

    def test_completed_checkpoint_records_progress(self, catalog, tmp_path):
        plans = _plans(catalog, [("xapian", "rnn")])
        path = tmp_path / "sweep.ckpt"
        run_cluster_checkpointed(plans, catalog.spec, path, **self.KWARGS)
        checkpoint = Checkpoint.load(path)
        assert checkpoint.extra == {
            "cells_total": 2, "cells_done": 2, "cursor": 2,
        }
        assert checkpoint.run_key == sweep_run_key(
            plans, catalog.spec, **self.KWARGS
        )

    def test_resume_skips_completed_cells(self, catalog, tmp_path):
        plans = _plans(catalog, [("xapian", "rnn"), ("sphinx", "graph")])
        path = tmp_path / "sweep.ckpt"
        full = run_cluster_checkpointed(
            plans, catalog.spec, path, **self.KWARGS
        )
        # Simulate a crash after one cell: truncate the completed map.
        checkpoint = Checkpoint.load(path)
        survivor = {0: checkpoint.payload["completed"][0]}
        Checkpoint(
            run_key=checkpoint.run_key,
            payload={**checkpoint.payload, "completed": survivor},
        ).save(path)
        supervisor = SupervisedPool(workers=1)
        resumed = run_cluster_checkpointed(
            plans, catalog.spec, path, resume=True, supervisor=supervisor,
            **self.KWARGS,
        )
        assert _flatten(resumed) == _flatten(full)
        assert supervisor.stats.tasks_completed == 3  # 4 cells, 1 survived

    def test_resume_with_missing_file_starts_fresh(self, catalog, tmp_path):
        plans = _plans(catalog, [("xapian", "rnn")])
        path = tmp_path / "never-written.ckpt"
        result = run_cluster_checkpointed(
            plans, catalog.spec, path, resume=True, **self.KWARGS
        )
        assert len(result.outcomes) == 2
        assert path.exists()

    def test_resume_refuses_a_different_sweep(self, catalog, tmp_path):
        plans = _plans(catalog, [("xapian", "rnn")])
        path = tmp_path / "sweep.ckpt"
        run_cluster_checkpointed(plans, catalog.spec, path, **self.KWARGS)
        with pytest.raises(CheckpointError, match="refusing to resume"):
            run_cluster_checkpointed(
                plans, catalog.spec, path, resume=True,
                levels=[0.3, 0.7], duration_s=5.0, config=SimConfig(seed=2),
            )

    def test_dedupe_bit_identical(self, catalog, tmp_path):
        base = _plans(catalog, [("xapian", "rnn"), ("sphinx", "graph")])
        plans = [base[i % 2] for i in range(6)]  # replicated fleet
        clean = run_cluster(plans, catalog.spec, **self.KWARGS)
        deduped = run_cluster_checkpointed(
            plans, catalog.spec, tmp_path / "sweep.ckpt", dedupe=True,
            **self.KWARGS,
        )
        assert _flatten(deduped) == _flatten(clean)
        checkpoint = Checkpoint.load(tmp_path / "sweep.ckpt")
        assert checkpoint.extra["cells_total"] == 4  # 2 unique plans x 2

    def test_faulted_sweep_resumes_bit_identical(self, catalog, tmp_path):
        plans = _plans(catalog, [("xapian", "rnn"), ("sphinx", "graph")])
        kwargs = dict(self.KWARGS, fault_plan=_fault_plan(plans))
        path = tmp_path / "sweep.ckpt"
        clean = run_cluster(plans, catalog.spec, **kwargs)
        run_cluster_checkpointed(plans, catalog.spec, path, **kwargs)
        checkpoint = Checkpoint.load(path)
        Checkpoint(
            run_key=checkpoint.run_key,
            payload={
                **checkpoint.payload,
                "completed": {
                    i: o for i, o in checkpoint.payload["completed"].items()
                    if i < 2
                },
            },
        ).save(path)
        resumed = run_cluster_checkpointed(
            plans, catalog.spec, path, resume=True, **kwargs
        )
        assert _flatten(resumed) == _flatten(clean)
        assert (
            resumed.fault_report.crashes_handled,
            resumed.fault_report.degraded_cells,
        ) == (
            clean.fault_report.crashes_handled,
            clean.fault_report.degraded_cells,
        )

    def test_checkpoint_every_validated(self, catalog, tmp_path):
        plans = _plans(catalog, [("xapian", "rnn")])
        with pytest.raises(ConfigError):
            run_cluster_checkpointed(
                plans, catalog.spec, tmp_path / "x.ckpt",
                checkpoint_every=0, **self.KWARGS,
            )

    def test_run_key_is_content_based(self, catalog):
        plans_a = _plans(catalog, [("xapian", "rnn")])
        plans_b = _plans(catalog, [("xapian", "rnn")])  # fresh objects
        key = sweep_run_key(plans_a, catalog.spec, **self.KWARGS)
        assert sweep_run_key(plans_b, catalog.spec, **self.KWARGS) == key
        assert sweep_run_key(
            plans_a, catalog.spec,
            levels=[0.3, 0.7], duration_s=9.0, config=SimConfig(seed=2),
        ) != key
        assert sweep_run_key(
            plans_a, catalog.spec,
            fault_plan=_fault_plan(plans_a), **self.KWARGS,
        ) != key


class TestCrashResumeProperty:
    """Checkpoint → kill → resume == uninterrupted, across the sweep space."""

    _clean_cache = {}

    def _sweep(self, catalog, seed, faulted):
        plans = _plans(catalog, [("xapian", "rnn"), ("sphinx", "graph")])
        kwargs = dict(
            levels=[0.3, 0.7], duration_s=3.0, config=SimConfig(seed=seed),
            fault_plan=_fault_plan(plans) if faulted else None,
        )
        return plans, kwargs

    def _clean_flat(self, catalog, seed, faulted):
        key = (seed, faulted)
        if key not in self._clean_cache:
            plans, kwargs = self._sweep(catalog, seed, faulted)
            self._clean_cache[key] = _flatten(
                run_cluster(plans, catalog.spec, **kwargs)
            )
        return self._clean_cache[key]

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=3),
        workers=st.sampled_from([1, 2]),
        faulted=st.booleans(),
        kill_after=st.integers(min_value=0, max_value=4),
    )
    def test_kill_and_resume_bit_identical(
        self, catalog, tmp_path_factory, seed, workers, faulted, kill_after
    ):
        plans, kwargs = self._sweep(catalog, seed, faulted)
        path = tmp_path_factory.mktemp("ckpt") / "sweep.ckpt"
        run_cluster_checkpointed(
            plans, catalog.spec, path, workers=workers, **kwargs
        )
        # Roll the checkpoint back to the moment of the simulated crash:
        # only the first ``kill_after`` completed cells survived.
        checkpoint = Checkpoint.load(path)
        completed = checkpoint.payload["completed"]
        survivors = {i: completed[i] for i in sorted(completed)[:kill_after]}
        Checkpoint(
            run_key=checkpoint.run_key,
            payload={**checkpoint.payload, "completed": survivors},
        ).save(path)
        resumed = run_cluster_checkpointed(
            plans, catalog.spec, path, resume=True, workers=workers, **kwargs
        )
        assert _flatten(resumed) == self._clean_flat(catalog, seed, faulted)


_SWEEP_SNIPPET = """\
from repro.apps import REFERENCE_SPEC, best_effort_apps, latency_critical_apps
from repro.evaluation.pipeline import HeraclesFactory
from repro.sim.cluster import ServerPlan
from repro.sim.colocation import SimConfig


def build_sweep():
    lcs = latency_critical_apps()
    bes = best_effort_apps()
    plans = [
        ServerPlan(
            lc_app=lcs[lc], be_app=bes[be],
            provisioned_power_w=lcs[lc].peak_server_power_w(),
            manager_factory=HeraclesFactory(),
        )
        for lc, be in [("xapian", "rnn"), ("sphinx", "graph")]
    ]
    kwargs = dict(
        levels=[0.25, 0.5, 0.75], duration_s=150.0, config=SimConfig(seed=11)
    )
    return plans, REFERENCE_SPEC, kwargs
"""

_CHILD_MAIN = _SWEEP_SNIPPET + """

if __name__ == "__main__":
    import sys

    from repro.runtime import run_cluster_checkpointed

    plans, spec, kwargs = build_sweep()
    run_cluster_checkpointed(
        plans, spec, sys.argv[1], resume=True, checkpoint_every=1, **kwargs
    )
"""


class TestSigkillResume:
    """A real mid-flight SIGKILL, then an in-process resume."""

    def test_sigkill_mid_sweep_then_resume(self, tmp_path):
        script = tmp_path / "child_sweep.py"
        script.write_text(_CHILD_MAIN)
        ckpt = tmp_path / "sweep.ckpt"
        child = subprocess.Popen(
            [sys.executable, str(script), str(ckpt)],
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            # Wait for at least one checkpointed cell, then pull the plug.
            deadline = time.monotonic() + 60.0
            progressed = False
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                if ckpt.exists():
                    extra = Checkpoint.load(ckpt).extra
                    if extra.get("cells_done", 0) >= 1:
                        progressed = True
                        break
                time.sleep(0.02)
            assert progressed, (
                "child finished or stalled before the kill: "
                f"{child.stderr.read().decode(errors='replace')}"
            )
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL

        # The atomically-written checkpoint is loadable and partial.
        partial = Checkpoint.load(ckpt)
        assert 1 <= partial.extra["cells_done"] < partial.extra["cells_total"]

        namespace = {}
        exec(_SWEEP_SNIPPET, namespace)
        plans, spec, kwargs = namespace["build_sweep"]()
        resumed = run_cluster_checkpointed(
            plans, spec, ckpt, resume=True, **kwargs
        )
        clean = run_cluster(plans, spec, **kwargs)
        assert _flatten(resumed) == _flatten(clean)
        assert Checkpoint.load(ckpt).extra["cells_done"] == 6
