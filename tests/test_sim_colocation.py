"""Tests for repro.sim.colocation: the time-stepped colocation harness."""

import pytest

from repro.core.server_manager import HeraclesLikeManager, PowerOptimizedManager
from repro.errors import ConfigError, SimulationError
from repro.hwmodel.server import Server
from repro.sim.colocation import (
    ColocationSim,
    SimConfig,
    build_colocated_server,
    run_steady_state,
)
from repro.workloads.traces import ConstantTrace, StepTrace


def make_sim(catalog, lc_name="xapian", be_name="rnn", seed=0, manager="pom"):
    lc = catalog.lc_apps[lc_name]
    be = catalog.be_apps[be_name]
    server = build_colocated_server(
        catalog.spec, lc, provisioned_power_w=lc.peak_server_power_w(), be_app=be
    )
    if manager == "pom":
        mgr = PowerOptimizedManager(server, model=catalog.lc_fits[lc_name].model)
    else:
        mgr = HeraclesLikeManager(server)
    return ColocationSim(
        server=server, lc_app=lc, trace=ConstantTrace(0.4),
        manager=mgr, be_app=be, config=SimConfig(seed=seed),
    )


class TestSimConfig:
    def test_defaults_match_paper_cadence(self):
        cfg = SimConfig()
        assert cfg.control_interval_s == 1.0
        assert cfg.power_interval_s == 0.1

    def test_validation(self):
        with pytest.raises(ConfigError):
            SimConfig(control_interval_s=0.0)
        with pytest.raises(ConfigError):
            SimConfig(power_interval_s=2.0, control_interval_s=1.0)
        with pytest.raises(ConfigError):
            SimConfig(warmup_s=-1.0)


class TestBuildColocatedServer:
    def test_lc_starts_on_full_box(self, catalog):
        lc = catalog.lc_apps["xapian"]
        server = build_colocated_server(catalog.spec, lc, 154.0)
        assert server.allocation_of(lc.name) == catalog.spec.full_allocation()
        assert server.primary_tenant() == lc.name
        assert server.secondary_tenant() is None

    def test_be_attached_but_parked(self, catalog):
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["graph"]
        server = build_colocated_server(catalog.spec, lc, 154.0, be_app=be)
        assert server.secondary_tenant() == be.name
        assert server.allocation_of(be.name).is_empty


class TestRun:
    def test_aggregates_are_sane(self, catalog):
        result = make_sim(catalog).run(duration_s=20.0)
        assert 0.0 < result.avg_be_throughput_norm < 1.0
        assert result.avg_be_throughput_abs == pytest.approx(
            result.avg_be_throughput_norm * catalog.be_apps["rnn"].peak_throughput
        )
        assert result.avg_lc_load_fraction == pytest.approx(0.4, abs=0.01)
        assert 50.0 < result.avg_power_w < 200.0
        assert 0.0 < result.power_utilization <= 1.05
        assert result.energy_kwh > 0.0

    def test_power_stays_near_cap(self, catalog):
        result = make_sim(catalog).run(duration_s=30.0)
        cap = catalog.lc_apps["xapian"].peak_server_power_w()
        assert result.telemetry.series("power_w").percentile(95) <= cap + 3.0

    def test_pom_keeps_slo(self, catalog):
        result = make_sim(catalog).run(duration_s=30.0)
        assert result.slo_violation_fraction <= 0.05

    def test_deterministic_given_seed(self, catalog):
        a = make_sim(catalog, seed=11).run(duration_s=10.0)
        b = make_sim(catalog, seed=11).run(duration_s=10.0)
        assert a.avg_be_throughput_norm == b.avg_be_throughput_norm
        assert a.avg_power_w == b.avg_power_w

    def test_seed_changes_results(self, catalog):
        a = make_sim(catalog, seed=1).run(duration_s=10.0)
        b = make_sim(catalog, seed=2).run(duration_s=10.0)
        assert a.avg_power_w != b.avg_power_w

    def test_telemetry_series_present(self, catalog):
        result = make_sim(catalog).run(duration_s=5.0)
        for name in ("power_w", "lc_load_fraction", "lc_slack", "lc_cores",
                     "lc_ways", "be_throughput_norm", "be_freq_ghz", "be_duty"):
            assert name in result.telemetry
            assert len(result.telemetry.series(name)) == 5

    def test_warmup_excluded_from_window(self, catalog):
        cfg = SimConfig(seed=0, warmup_s=10.0)
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["rnn"]
        server = build_colocated_server(
            catalog.spec, lc, lc.peak_server_power_w(), be_app=be
        )
        mgr = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        sim = ColocationSim(server=server, lc_app=lc, trace=ConstantTrace(0.4),
                            manager=mgr, be_app=be, config=cfg)
        result = sim.run(duration_s=5.0)
        times = result.telemetry.series("power_w").times
        assert min(times) >= 0.0

    def test_reacts_to_load_step(self, catalog):
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["rnn"]
        server = build_colocated_server(
            catalog.spec, lc, lc.peak_server_power_w(), be_app=be
        )
        mgr = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        sim = ColocationSim(
            server=server, lc_app=lc,
            trace=StepTrace.of((0.0, 0.2), (15.0, 0.8)),
            manager=mgr, be_app=be, config=SimConfig(seed=0),
        )
        result = sim.run(duration_s=30.0)
        cores = result.telemetry.series("lc_cores")
        early = [v for t, v in zip(cores.times, cores.values) if t < 14]
        late = [v for t, v in zip(cores.times, cores.values) if t > 20]
        assert max(early) < max(late)
        assert result.slo_violation_fraction < 0.2

    def test_without_be_app(self, catalog):
        lc = catalog.lc_apps["xapian"]
        server = build_colocated_server(catalog.spec, lc, lc.peak_server_power_w())
        mgr = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        sim = ColocationSim(server=server, lc_app=lc, trace=ConstantTrace(0.5),
                            manager=mgr, config=SimConfig(seed=0))
        result = sim.run(duration_s=10.0)
        assert result.avg_be_throughput_norm == 0.0
        assert result.be_name is None

    def test_invalid_duration_rejected(self, catalog):
        with pytest.raises(ConfigError):
            make_sim(catalog).run(duration_s=0.0)


class TestWiringValidation:
    def test_manager_bound_elsewhere_rejected(self, catalog):
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["rnn"]
        server_a = build_colocated_server(catalog.spec, lc, 154.0, be_app=be)
        server_b = build_colocated_server(catalog.spec, lc, 154.0, be_app=be)
        mgr = PowerOptimizedManager(server_b, model=catalog.lc_fits["xapian"].model)
        with pytest.raises(SimulationError):
            ColocationSim(server=server_a, lc_app=lc, trace=ConstantTrace(0.5),
                          manager=mgr, be_app=be)

    def test_missing_primary_rejected(self, catalog):
        server = Server(catalog.spec, provisioned_power_w=100.0)
        lc = catalog.lc_apps["xapian"]
        with pytest.raises(ConfigError):
            # manager construction itself requires a primary
            PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)

    def test_be_app_without_tenant_rejected(self, catalog):
        lc = catalog.lc_apps["xapian"]
        be = catalog.be_apps["rnn"]
        server = build_colocated_server(catalog.spec, lc, 154.0)  # no BE slot
        mgr = PowerOptimizedManager(server, model=catalog.lc_fits["xapian"].model)
        with pytest.raises(SimulationError):
            ColocationSim(server=server, lc_app=lc, trace=ConstantTrace(0.5),
                          manager=mgr, be_app=be)


class TestRunSteadyState:
    def test_builder_called_with_constant_trace(self, catalog):
        seen = {}

        def builder(trace):
            seen["trace"] = trace
            return make_sim(catalog)

        run_steady_state(builder, level=0.3, duration_s=5.0)
        assert isinstance(seen["trace"], ConstantTrace)
        assert seen["trace"].fraction == 0.3

    def test_invalid_level_rejected(self, catalog):
        with pytest.raises(ConfigError):
            run_steady_state(lambda trace: make_sim(catalog), level=1.5)
