"""Tests for repro.evaluation.pipeline: the end-to-end wiring."""

import pytest

from repro.apps.catalog import NOCAP_PROVISIONED_W
from repro.core.server_manager import HeraclesLikeManager, PowerOptimizedManager
from repro.errors import ConfigError
from repro.evaluation.pipeline import (
    FittedCatalog,
    cluster_plans,
    fit_catalog,
    manager_factory,
    placement_for_policy,
    run_policy,
    summarize_policy,
)
from repro.sim.colocation import SimConfig, build_colocated_server


class TestFitCatalog:
    def test_covers_all_apps(self, catalog):
        assert set(catalog.lc_fits) == {"img-dnn", "sphinx", "xapian", "tpcc"}
        assert set(catalog.be_fits) == {"lstm", "rnn", "graph", "pbzip"}

    def test_reproducible_by_seed(self):
        a = fit_catalog(seed=3)
        b = fit_catalog(seed=3)
        assert a.lc_fits["xapian"].r2_perf == b.lc_fits["xapian"].r2_perf
        assert a.be_fits["graph"].model.perf.alphas == b.be_fits["graph"].model.perf.alphas

    def test_different_seeds_differ(self):
        a = fit_catalog(seed=3)
        b = fit_catalog(seed=4)
        assert a.lc_fits["xapian"].r2_perf != b.lc_fits["xapian"].r2_perf

    def test_server_sides_carry_provisioning(self, catalog):
        sides = catalog.lc_server_sides()
        by_name = {s.name: s for s in sides}
        assert by_name["sphinx"].provisioned_power_w == pytest.approx(182.0, abs=0.5)
        assert by_name["xapian"].peak_load == 4000.0

    def test_performance_matrix_shape(self, catalog):
        matrix = catalog.performance_matrix(levels=[0.3, 0.6])
        assert matrix.values.shape == (4, 4)


class TestPlacementForPolicy:
    def test_pocolo_is_deterministic(self, catalog):
        a = placement_for_policy(catalog, "pocolo")
        b = placement_for_policy(catalog, "pocolo")
        assert a.mapping == b.mapping
        assert a.method == "lp"

    def test_random_uses_seed(self, catalog):
        a = placement_for_policy(catalog, "random", seed=1)
        b = placement_for_policy(catalog, "random", seed=1)
        c = placement_for_policy(catalog, "random", seed=2)
        assert a.mapping == b.mapping
        assert a.mapping != c.mapping or True  # may collide; seeded path exercised

    def test_pom_uses_random_placement(self, catalog):
        a = placement_for_policy(catalog, "pom", seed=5)
        b = placement_for_policy(catalog, "random", seed=5)
        assert a.mapping == b.mapping

    def test_unknown_policy_rejected(self, catalog):
        with pytest.raises(ConfigError):
            placement_for_policy(catalog, "qos-aware")


class TestManagerFactory:
    def test_random_builds_heracles(self, catalog):
        lc = catalog.lc_apps["xapian"]
        server = build_colocated_server(catalog.spec, lc, 154.0)
        manager = manager_factory(catalog, "xapian", "random")(server)
        assert isinstance(manager, HeraclesLikeManager)
        assert not manager.power_aware

    def test_pom_and_pocolo_build_power_optimized(self, catalog):
        lc = catalog.lc_apps["xapian"]
        for policy in ("pom", "pocolo"):
            server = build_colocated_server(catalog.spec, lc, 154.0)
            manager = manager_factory(catalog, "xapian", policy)(server)
            assert isinstance(manager, PowerOptimizedManager)
            assert manager.power_aware
            assert manager.model is catalog.lc_fits["xapian"].model

    def test_unknown_policy_rejected(self, catalog):
        with pytest.raises(ConfigError):
            manager_factory(catalog, "xapian", "mystery")


class TestClusterPlans:
    def test_one_plan_per_lc_server(self, catalog):
        placement = placement_for_policy(catalog, "pocolo")
        plans = cluster_plans(catalog, placement, "pocolo")
        assert len(plans) == 4
        assert {p.lc_app.name for p in plans} == set(catalog.lc_apps)

    def test_be_apps_follow_placement(self, catalog):
        placement = placement_for_policy(catalog, "pocolo")
        plans = cluster_plans(catalog, placement, "pocolo")
        for plan in plans:
            assert plan.be_app is not None
            assert placement.mapping[plan.be_app.name] == plan.lc_app.name

    def test_right_sized_provisioning(self, catalog):
        placement = placement_for_policy(catalog, "pocolo")
        plans = cluster_plans(catalog, placement, "pocolo")
        for plan in plans:
            assert plan.provisioned_power_w == pytest.approx(
                plan.lc_app.peak_server_power_w(), abs=0.5
            )

    def test_nocap_override(self, catalog):
        placement = placement_for_policy(catalog, "random", seed=0)
        plans = cluster_plans(catalog, placement, "random",
                              provisioned_override_w=NOCAP_PROVISIONED_W)
        assert all(p.provisioned_power_w == NOCAP_PROVISIONED_W for p in plans)


class TestRunPolicyAndSummaries:
    def test_run_policy_produces_full_grid(self, catalog):
        result = run_policy(catalog, "pocolo", levels=[0.3, 0.7],
                            duration_s=8.0, sim_config=SimConfig(seed=0))
        assert len(result.outcomes) == 8  # 4 servers x 2 levels

    def test_summary_fields(self, catalog):
        result = run_policy(catalog, "pocolo", levels=[0.3, 0.7],
                            duration_s=8.0, sim_config=SimConfig(seed=0))
        summary = summarize_policy("pocolo", result, catalog)
        assert summary.throughput_per_server == pytest.approx(
            0.5 + summary.be_throughput_norm, abs=0.03
        )
        assert 100.0 < summary.provisioned_w_per_server < 200.0
        assert 0.0 < summary.power_utilization <= 1.05

    def test_nocap_summary_uses_override(self, catalog):
        result = run_policy(catalog, "random-nocap", levels=[0.5],
                            duration_s=8.0, seed=0, sim_config=SimConfig(seed=0))
        summary = summarize_policy("random-nocap", result, catalog,
                                   provisioned_override_w=NOCAP_PROVISIONED_W)
        assert summary.provisioned_w_per_server == NOCAP_PROVISIONED_W
