"""Tests for repro.solvers.hungarian: assignment solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.solvers.hungarian import (
    brute_force_assignment_max,
    greedy_assignment_max,
    solve_assignment_max,
    solve_assignment_min,
)


class TestKnownInstances:
    def test_identity_optimal(self):
        m = [[10, 1, 1], [1, 10, 1], [1, 1, 10]]
        assignment, total = solve_assignment_max(m)
        assert assignment == [0, 1, 2]
        assert total == 30.0

    def test_anti_diagonal(self):
        m = [[1, 1, 10], [1, 10, 1], [10, 1, 1]]
        assignment, total = solve_assignment_max(m)
        assert assignment == [2, 1, 0]
        assert total == 30.0

    def test_min_version(self):
        m = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        assignment, total = solve_assignment_min(m)
        # scipy-verified optimum is 5: (0,1)+(1,0)+(2,2)
        assert total == 5.0

    def test_single_cell(self):
        assignment, total = solve_assignment_max([[7.0]])
        assert assignment == [0]
        assert total == 7.0

    def test_negative_values(self):
        m = [[-5, -1], [-2, -8]]
        assignment, total = solve_assignment_max(m)
        assert assignment == [1, 0]
        assert total == -3.0


class TestRectangular:
    def test_more_columns_than_rows(self):
        m = [[1, 9, 2], [8, 1, 3]]
        assignment, total = solve_assignment_max(m)
        assert assignment == [1, 0]
        assert total == 17.0

    def test_more_rows_than_columns(self):
        m = [[9], [5], [1]]
        assignment, total = solve_assignment_max(m)
        matched = [a for a in assignment if a >= 0]
        assert matched == [0]
        assert total == 9.0


class TestAgainstReferences:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force(self, n, seed):
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(n, n)) * 10.0
        _, hungarian_total = solve_assignment_max(m)
        _, brute_total = brute_force_assignment_max(m)
        assert hungarian_total == pytest.approx(brute_total, abs=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=10_000))
    def test_matches_scipy(self, n, seed):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(n, n)) * 10.0
        _, ours = solve_assignment_min(m)
        rows, cols = scipy_opt.linear_sum_assignment(m)
        assert ours == pytest.approx(float(m[rows, cols].sum()), abs=1e-8)

    def test_assignment_is_a_permutation(self):
        rng = np.random.default_rng(5)
        m = rng.normal(size=(6, 6))
        assignment, _ = solve_assignment_max(m)
        assert sorted(assignment) == list(range(6))


class TestGreedy:
    def test_greedy_suboptimal_on_trap_instance(self):
        # Greedy takes the 10 first and is then forced into 1+1 = 12,
        # while the optimum pairs 9+9 = 18.
        m = [[10, 9], [9, 1]]
        _, greedy_total = greedy_assignment_max(m)
        _, optimal_total = solve_assignment_max(m)
        assert greedy_total == 11.0
        assert optimal_total == 18.0

    def test_greedy_never_beats_optimal(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            m = rng.normal(size=(5, 5))
            _, greedy_total = greedy_assignment_max(m)
            _, optimal_total = solve_assignment_max(m)
            assert greedy_total <= optimal_total + 1e-9


class TestValidation:
    def test_empty_matrix_rejected(self):
        with pytest.raises(SolverError):
            solve_assignment_max(np.zeros((0, 0)))

    def test_nan_rejected(self):
        with pytest.raises(SolverError):
            solve_assignment_max([[1.0, float("nan")], [2.0, 3.0]])

    def test_inf_rejected(self):
        with pytest.raises(SolverError):
            solve_assignment_min([[1.0, float("inf")], [2.0, 3.0]])

    def test_brute_force_requires_square(self):
        with pytest.raises(SolverError):
            brute_force_assignment_max([[1, 2, 3], [4, 5, 6]])

    def test_brute_force_size_guard(self):
        with pytest.raises(SolverError):
            brute_force_assignment_max(np.ones((10, 10)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(SolverError):
            solve_assignment_max(np.array([1.0, 2.0]))
