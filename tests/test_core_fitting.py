"""Tests for repro.core.fitting: log-linear regression and R²."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fitting import (
    FitResult,
    ProfileSample,
    fit_indirect_utility,
    fit_performance,
    fit_power,
    r_squared,
)
from repro.errors import ModelFitError


def synth_samples(alpha0, a_c, a_w, p_static, p_c, p_w, noise=0.0, seed=0):
    """Noise-free (or noisy) samples from an exact Cobb-Douglas world."""
    rng = np.random.default_rng(seed)
    samples = []
    for c in (1, 2, 4, 6, 9, 12):
        for w in (2, 5, 9, 14, 20):
            perf = alpha0 * c ** a_c * w ** a_w
            power = p_static + c * p_c + w * p_w
            if noise:
                perf *= rng.lognormal(0, noise)
                power *= rng.lognormal(0, noise)
            samples.append(ProfileSample(cores=c, ways=w, perf=perf, power_w=power))
    return samples


class TestRSquared:
    def test_perfect_fit(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == 1.0

    def test_mean_predictor_is_zero(self):
        assert r_squared([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        assert r_squared([1, 2, 3], [3, 2, 1]) < 0

    def test_degenerate_target(self):
        assert r_squared([2, 2], [2, 2]) == 1.0
        assert r_squared([2, 2], [1, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelFitError):
            r_squared([1, 2], [1, 2, 3])
        with pytest.raises(ModelFitError):
            r_squared([], [])


class TestExactRecovery:
    """With noise-free Cobb-Douglas ground truth, the fit is exact."""

    def test_performance_parameters_recovered(self):
        samples = synth_samples(2.5, 0.55, 0.35, 4.0, 3.0, 1.2)
        params, r2 = fit_performance(samples)
        assert params.alpha0 == pytest.approx(2.5, rel=1e-9)
        assert params.alphas[0] == pytest.approx(0.55, abs=1e-9)
        assert params.alphas[1] == pytest.approx(0.35, abs=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_power_parameters_recovered(self):
        samples = synth_samples(2.5, 0.55, 0.35, 4.0, 3.0, 1.2)
        params, r2 = fit_power(samples)
        assert params.p_static == pytest.approx(4.0, abs=1e-9)
        assert params.p[0] == pytest.approx(3.0, abs=1e-9)
        assert params.p[1] == pytest.approx(1.2, abs=1e-9)
        assert r2 == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.2, max_value=1.0),
        st.floats(min_value=0.2, max_value=1.0),
        st.floats(min_value=0.5, max_value=8.0),
        st.floats(min_value=0.5, max_value=8.0),
    )
    def test_recovery_property(self, a_c, a_w, p_c, p_w):
        samples = synth_samples(1.7, a_c, a_w, 6.0, p_c, p_w)
        fit = fit_indirect_utility(samples)
        assert fit.model.perf.alphas[0] == pytest.approx(a_c, abs=1e-7)
        assert fit.model.power.p[1] == pytest.approx(p_w, abs=1e-7)


class TestNoisyRecovery:
    def test_r2_degrades_gracefully(self):
        samples = synth_samples(2.0, 0.6, 0.4, 5.0, 4.0, 1.5, noise=0.10, seed=2)
        fit = fit_indirect_utility(samples)
        assert 0.6 < fit.r2_perf < 1.0
        assert 0.8 < fit.r2_power <= 1.0

    def test_preference_vector_robust_to_noise(self):
        samples = synth_samples(2.0, 0.6, 0.4, 5.0, 4.0, 1.5, noise=0.08, seed=3)
        fit = fit_indirect_utility(samples)
        true_c = (0.6 / 4.0) / (0.6 / 4.0 + 0.4 / 1.5)
        assert fit.preference_vector()["cores"] == pytest.approx(true_c, abs=0.06)


class TestEdgeCases:
    def test_too_few_samples_rejected(self):
        samples = synth_samples(2.0, 0.6, 0.4, 5.0, 4.0, 1.5)[:3]
        with pytest.raises(ModelFitError):
            fit_performance(samples)
        with pytest.raises(ModelFitError):
            fit_power(samples)

    def test_zero_perf_samples_skipped(self):
        samples = synth_samples(2.0, 0.6, 0.4, 5.0, 4.0, 1.5)
        samples += [ProfileSample(cores=1, ways=1, perf=0.0, power_w=10.0)]
        params, _ = fit_performance(samples)
        assert params.alphas[0] == pytest.approx(0.6, abs=1e-9)

    def test_degenerate_grid_rejected(self):
        # Only one core count: cores column is collinear with intercept.
        samples = [
            ProfileSample(cores=4, ways=w, perf=2.0 * w, power_w=10.0 + w)
            for w in (2, 5, 9, 14, 20)
        ]
        with pytest.raises(ModelFitError):
            fit_performance(samples)
        with pytest.raises(ModelFitError):
            fit_power(samples)

    def test_negative_coefficient_clamped(self):
        # Power DECREASES with cores here — unphysical, must be clamped.
        samples = [
            ProfileSample(cores=c, ways=w, perf=c * w, power_w=50.0 - 2.0 * c + 3.0 * w)
            for c in (1, 4, 8, 12)
            for w in (2, 8, 14, 20)
        ]
        params, _ = fit_power(samples)
        assert params.p[0] > 0
        assert params.p[1] == pytest.approx(3.0, abs=1e-6)

    def test_negative_static_clamped_to_zero(self):
        samples = [
            ProfileSample(cores=c, ways=w, perf=c * w, power_w=2.0 * c + 3.0 * w - 1.0)
            for c in (1, 4, 8, 12)
            for w in (2, 8, 14, 20)
        ]
        params, _ = fit_power(samples)
        assert params.p_static >= 0.0


class TestFitResult:
    def test_carries_sample_count(self):
        samples = synth_samples(2.0, 0.6, 0.4, 5.0, 4.0, 1.5)
        fit = fit_indirect_utility(samples)
        assert isinstance(fit, FitResult)
        assert fit.n_samples == len(samples)

    def test_resources_accessor(self):
        s = ProfileSample(cores=3, ways=7, perf=1.0, power_w=2.0)
        assert s.resources() == (3.0, 7.0)
