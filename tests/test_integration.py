"""Integration tests: the paper's headline claims, end to end.

These run the full pipeline (profile → fit → place → manage → simulate)
at reduced duration and assert the *shape* of the paper's results:
orderings and directions, not absolute numbers.
"""

import numpy as np
import pytest

from repro.evaluation import (
    evaluate_all_policies,
    fig15_tco,
    fit_catalog,
    placement_for_policy,
    run_policy,
)


@pytest.fixture(scope="module")
def policy_evals(catalog):
    """One shared three-policy evaluation (module-scoped: ~15 s)."""
    return evaluate_all_policies(
        catalog, placement_seeds=range(4), levels=[0.1, 0.3, 0.5, 0.7, 0.9],
        duration_s=15.0,
    )


class TestHeadlineOrdering:
    def test_fig12_throughput_ordering(self, policy_evals):
        """POColo > POM ≳ Random in average BE throughput."""
        random_tput = policy_evals["random"].cluster_be_throughput
        pom_tput = policy_evals["pom"].cluster_be_throughput
        pocolo_tput = policy_evals["pocolo"].cluster_be_throughput
        assert pocolo_tput > random_tput * 1.03
        assert pocolo_tput >= pom_tput - 0.01

    def test_fig13_power_utilization_ordering(self, policy_evals):
        """Power-aware policies draw visibly less of the provisioned cap."""
        random_util = policy_evals["random"].cluster_power_utilization
        pom_util = policy_evals["pom"].cluster_power_utilization
        pocolo_util = policy_evals["pocolo"].cluster_power_utilization
        assert random_util > 0.90   # the paper's ~96 %
        assert pom_util < random_util - 0.03
        assert pocolo_util < random_util - 0.03

    def test_all_policies_keep_slo(self, policy_evals):
        for ev in policy_evals.values():
            assert ev.violation_fraction < 0.05

    def test_every_server_gets_a_corunner_under_pocolo(self, policy_evals):
        by_server = policy_evals["pocolo"].be_throughput_by_server
        assert all(v > 0.0 for v in by_server.values())


class TestFig14Placement:
    def test_pocolo_matches_paper_assignment(self, catalog):
        decision = placement_for_policy(catalog, "pocolo")
        assert decision.mapping["graph"] == "sphinx"
        assert decision.mapping["lstm"] == "img-dnn"
        assert {decision.mapping["rnn"], decision.mapping["pbzip"]} == {
            "xapian", "tpcc"
        }


class TestFig15Tco:
    def test_pocolo_cheapest(self, catalog):
        ev = fig15_tco(catalog, placement_seeds=range(2),
                       levels=[0.1, 0.5, 0.9], duration_s=10.0)
        totals = {name: b.total_usd for name, b in ev.breakdowns.items()}
        assert min(totals, key=totals.get) == "pocolo"
        assert all(s > 0 for s in ev.savings_of_pocolo.values())

    def test_nocap_pays_more_infrastructure(self, catalog):
        ev = fig15_tco(catalog, placement_seeds=range(2),
                       levels=[0.1, 0.5, 0.9], duration_s=10.0)
        assert (
            ev.breakdowns["random-nocap"].power_infra_usd
            > ev.breakdowns["random"].power_infra_usd
        )

    def test_pom_saves_energy_vs_random(self, catalog):
        ev = fig15_tco(catalog, placement_seeds=range(2),
                       levels=[0.1, 0.5, 0.9], duration_s=10.0)
        assert ev.breakdowns["pom"].energy_usd < ev.breakdowns["random"].energy_usd


class TestEnergyHeadline:
    def test_pocolo_energy_per_work_lower_than_random(self, policy_evals):
        """The paper's 'energy reduction' claim: joules per useful work."""
        def energy_per_work(ev):
            energy = float(np.mean([
                run.total_energy_kwh() for run in ev.runs
            ]))
            return energy / (0.5 + ev.cluster_be_throughput)

        assert energy_per_work(policy_evals["pocolo"]) < energy_per_work(
            policy_evals["random"]
        )
